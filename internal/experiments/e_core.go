package experiments

import (
	"fmt"
	"strings"

	"repro/internal/complexity"
	"repro/internal/db"
	"repro/internal/parser"
)

// bankSrc is the Example 2.1/2.2 banking program (money transfer as a
// nested transaction).
const bankSrc = `
	balance(A, B) :- account(A, B).
	change_balance(A, B1, B2) :- del.account(A, B1), ins.account(A, B2).
	withdraw(Amt, A) :- balance(A, B), B >= Amt, sub(B, Amt, C), change_balance(A, B, C).
	deposit(Amt, A) :- balance(A, B), add(B, Amt, C), change_balance(A, B, C).
	transfer(Amt, A, B) :- withdraw(Amt, A), deposit(Amt, B).
`

// accountFacts renders k accounts with balance 1000 each.
func accountFacts(k int) string {
	var b strings.Builder
	for i := 0; i < k; i++ {
		fmt.Fprintf(&b, "account(acct%d, 1000).\n", i)
	}
	return b.String()
}

// transferChainGoal renders n sequential transfers around a ring of k
// accounts.
func transferChainGoal(n, k int) string {
	parts := make([]string, n)
	for i := 0; i < n; i++ {
		parts[i] = fmt.Sprintf("transfer(1, acct%d, acct%d)", i%k, (i+1)%k)
	}
	return strings.Join(parts, ", ")
}

// E1Transfer — Example 2.1: chains of money transfers. The paper's claim is
// behavioural (transfers are transactions composed from queries and
// updates); we verify semantics and show cost is linear in the number of
// transfers — database transactions alone, without concurrency, are cheap.
func E1Transfer(cfg Config) Report {
	r := Report{ID: "E1", Title: "Example 2.1: money transfer chains (sequential transactions)", Pass: true}
	sizes := pick(cfg.Quick, []int{2, 4, 8}, []int{2, 4, 8, 16, 32, 64})
	const k = 4
	series := complexity.Sweep("transfer chain", sizes, func(n int) (float64, map[string]float64) {
		src := bankSrc + accountFacts(k)
		res, d, err := prove(src, transferChainGoal(n, k), defaultOpts())
		if err != nil || !res.Success {
			r.Pass = false
			return 0, nil
		}
		// Money is conserved.
		total := int64(0)
		for _, row := range d.Tuples("account", 2) {
			total += row[1].IntVal()
		}
		if total != int64(k)*1000 {
			r.Pass = false
			r.Notes = append(r.Notes, fmt.Sprintf("money not conserved at n=%d: %d", n, total))
		}
		return float64(res.Stats.Steps), nil
	})
	fit := complexity.FitGrowth(series)
	r.Tables = append(r.Tables, complexity.SeriesTable(series))
	r.Notes = append(r.Notes, "fit: "+fit.Classify())
	if !fit.LooksPolynomial() || fit.PolyDegree > 1.6 {
		r.Pass = false
		r.Notes = append(r.Notes, "expected ~linear growth in chain length")
	}
	return r
}

// E2NestedAbort — Example 2.2: a failing subtransaction aborts the whole
// nested transaction ("the failure of one implies the failure of the
// other"), leaving the database untouched; partial rollback works at every
// prefix length.
func E2NestedAbort(cfg Config) Report {
	r := Report{ID: "E2", Title: "Example 2.2: nested transactions, relative commit, rollback", Pass: true}
	tab := complexity.NewTable("abort behaviour", "scenario", "committed", "db unchanged", "steps")
	src := bankSrc + accountFacts(2)

	orig, _ := db.FromFacts(parser.MustParse(accountFacts(2)).Facts)
	run := func(name, goal string, wantSuccess bool) {
		res, d, err := prove(src, goal, defaultOpts())
		if err != nil {
			r.Pass = false
			r.Notes = append(r.Notes, name+": "+err.Error())
			return
		}
		tab.AddRow(name, res.Success, d.Equal(orig), res.Stats.Steps)
		if res.Success != wantSuccess {
			r.Pass = false
			r.Notes = append(r.Notes, name+": unexpected outcome")
		}
		if !wantSuccess && !d.Equal(orig) {
			r.Pass = false
			r.Notes = append(r.Notes, name+": aborted transaction left changes")
		}
	}
	run("transfer within funds", "transfer(100, acct0, acct1)", true)
	run("overdraft aborts whole transfer", "transfer(5000, acct0, acct1)", false)
	run("second of two aborts both", "transfer(100, acct0, acct1), transfer(5000, acct1, acct0)", false)
	run("deposit to unknown account aborts", "transfer(100, acct0, nobody)", false)
	r.Tables = append(r.Tables, tab)
	return r
}

// E9NonRecursive — Theorem 4.7: without recursion, data complexity falls
// inside PTIME. The workload is a fixed nonrecursive program whose
// exhaustive (failing) search explores the full 3-way join: steps should
// grow as ~n³ — polynomial, never exponential.
func E9NonRecursive(cfg Config) Report {
	r := Report{ID: "E9", Title: "Theorem 4.7: nonrecursive TD is inside PTIME", Pass: true}
	sizes := pick(cfg.Quick, []int{4, 8, 12}, []int{4, 8, 16, 24, 32})
	series := complexity.Sweep("3-way join search (failing)", sizes, func(n int) (float64, map[string]float64) {
		var b strings.Builder
		for i := 0; i < n; i++ {
			fmt.Fprintf(&b, "p(%d). q(%d). s(%d).\n", i, i, i)
		}
		src := b.String() + "probe :- p(X), q(Y), s(Z), w(X, Y, Z).\n"
		opts := defaultOpts()
		opts.Table = false // measure the raw search
		opts.LoopCheck = false
		return mustSteps(src, "probe", opts, false, &r.Pass), nil
	})
	fit := complexity.FitGrowth(series)
	r.Tables = append(r.Tables, complexity.SeriesTable(series))
	r.Notes = append(r.Notes, "fit: "+fit.Classify())
	if !fit.LooksPolynomial() || fit.PolyDegree < 2.2 || fit.PolyDegree > 3.6 {
		r.Pass = false
		r.Notes = append(r.Notes, fmt.Sprintf("expected ~cubic polynomial, got degree %.2f", fit.PolyDegree))
	}
	return r
}
