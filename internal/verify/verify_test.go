package verify

import (
	"fmt"
	"testing"

	"repro/internal/ast"
	"repro/internal/db"
	"repro/internal/engine"
	"repro/internal/parser"
	"repro/internal/term"
)

func setup(t *testing.T, src string) (*ast.Program, *db.DB) {
	t.Helper()
	prog, err := parser.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	d, err := db.FromFacts(prog.Facts)
	if err != nil {
		t.Fatal(err)
	}
	return prog, d
}

func goalOf(t *testing.T, prog *ast.Program, src string) ast.Goal {
	t.Helper()
	g, _, err := parser.ParseGoal(src, prog.VarHigh)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func opts() engine.Options { return engine.DefaultOptions() }

func TestInvariantAgentAcquisition(t *testing.T) {
	// Agent pool of 1, two concurrent claimants. Under the pure
	// declarative semantics, available(A) ⊗ del.available(A) is NOT atomic
	// — and because deleting an absent tuple is a silent no-op (set
	// semantics), two processes can both observe available(a1) before
	// either deletes it: double allocation is genuinely reachable. The
	// verifier must find that interleaving.
	bare := `
		available(a1).
		job(W) :- available(A), del.available(A), ins.busy(A, W),
		          del.busy(A, W), ins.done(W), ins.available(A).
	`
	inv := func(d *db.DB) error {
		if d.Count("busy", 2) > 1 {
			return fmt.Errorf("two agents busy with a pool of one")
		}
		return nil
	}
	prog, d := setup(t, bare)
	goal := goalOf(t, prog, "job(w1) | job(w2)")
	res, err := Invariant(prog, goal, d, inv, opts())
	if err != nil {
		t.Fatal(err)
	}
	if res.Holds {
		t.Fatal("verifier missed the declarative double-allocation race")
	}
	if d.Count("available", 1) != 1 {
		t.Fatal("input db mutated")
	}

	// The TD-native fix is the paper's isolation modality: make the
	// test-and-consume (and the release) atomic. Now NO reachable state
	// violates the invariant.
	isolated := `
		available(a1).
		acquire(A, W) :- available(A), del.available(A), ins.busy(A, W).
		release(A, W) :- del.busy(A, W), ins.done(W), ins.available(A).
		job(W) :- iso(acquire(A, W)), iso(release(A, W)).
	`
	prog2, d2 := setup(t, isolated)
	goal2 := goalOf(t, prog2, "job(w1) | job(w2)")
	res2, err := Invariant(prog2, goal2, d2, inv, opts())
	if err != nil {
		t.Fatal(err)
	}
	if !res2.Holds {
		t.Fatalf("isolated acquisition still violates: %v (trace %v)",
			res2.Violation.Cause, res2.Violation.Trace)
	}
	if res2.Executions == 0 {
		t.Fatal("no executions explored")
	}
}

func TestInvariantViolatedWithTrace(t *testing.T) {
	// Without the atomic take (query+del in one rule), a race exists: both
	// workers can observe available(a1) before either removes it.
	src := `
		available(a1).
		peek(W) :- available(A), ins.claimed(A, W).
		take(W) :- claimed(A, W), del.available(A), ins.busy(A, W).
		job(W) :- peek(W), take(W).
	`
	prog, d := setup(t, src)
	goal := goalOf(t, prog, "job(w1) | job(w2)")
	inv := func(d *db.DB) error {
		if d.Count("busy", 2) > 1 {
			return fmt.Errorf("double allocation")
		}
		return nil
	}
	res, err := Invariant(prog, goal, d, inv, opts())
	if err != nil {
		t.Fatal(err)
	}
	if res.Holds {
		t.Fatal("racy program passed the invariant")
	}
	if res.Violation == nil || len(res.Violation.Trace) == 0 {
		t.Fatal("violation without trace")
	}
}

func TestInvariantChecksInitialState(t *testing.T) {
	prog, d := setup(t, "bad(x).")
	goal := goalOf(t, prog, "true")
	res, err := Invariant(prog, goal, d, func(d *db.DB) error {
		if d.Count("bad", 1) > 0 {
			return fmt.Errorf("bad present")
		}
		return nil
	}, opts())
	if err != nil {
		t.Fatal(err)
	}
	if res.Holds {
		t.Fatal("initial-state violation missed")
	}
}

func TestFinalsDeduplicates(t *testing.T) {
	// Two rules reaching the same final state: one distinct final.
	src := `
		t :- ins.x.
		t :- ins.y, del.y, ins.x.
	`
	prog, d := setup(t, src)
	finals, err := Finals(prog, goalOf(t, prog, "t"), d, opts())
	if err != nil {
		t.Fatal(err)
	}
	if len(finals) != 1 {
		t.Fatalf("finals = %d, want 1", len(finals))
	}
	if !finals[0].Contains("x", nil) {
		t.Fatalf("final wrong:\n%s", finals[0])
	}
}

func TestFinalsDistinct(t *testing.T) {
	src := `
		pick :- item(I), del.item(I), ins.chosen(I).
		item(a). item(b). item(c).
	`
	prog, d := setup(t, src)
	finals, err := Finals(prog, goalOf(t, prog, "pick"), d, opts())
	if err != nil {
		t.Fatal(err)
	}
	if len(finals) != 3 {
		t.Fatalf("finals = %d, want 3", len(finals))
	}
}

const counterSrc = `
	counter(0).
	bump :- counter(N), del.counter(N), add(N, 1, M), ins.counter(M).
`

func TestSerializableWithIsolation(t *testing.T) {
	prog, d := setup(t, counterSrc)
	txns := []ast.Goal{
		goalOf(t, prog, "iso(bump)"),
		goalOf(t, prog, "iso(bump)"),
	}
	res, err := Serializable(prog, txns, d, opts())
	if err != nil {
		t.Fatal(err)
	}
	if !res.OK {
		t.Fatalf("isolated bumps not serializable; anomaly:\n%s", res.Anomaly)
	}
	if res.ConcurrentFinals != 1 {
		t.Fatalf("concurrent finals = %d, want 1", res.ConcurrentFinals)
	}
}

func TestSerializableDetectsLostUpdate(t *testing.T) {
	prog, d := setup(t, counterSrc)
	txns := []ast.Goal{
		goalOf(t, prog, "bump"),
		goalOf(t, prog, "bump"),
	}
	res, err := Serializable(prog, txns, d, opts())
	if err != nil {
		t.Fatal(err)
	}
	if res.OK {
		t.Fatal("unisolated bumps declared serializable")
	}
	if res.Anomaly == nil || !res.Anomaly.Contains("counter", []term.Term{term.NewInt(1)}) {
		t.Fatalf("anomaly should be the lost update counter(1):\n%s", res.Anomaly)
	}
}

func TestSerializableCommutingUpdatesOK(t *testing.T) {
	// Blind inserts commute: concurrent = serial even without isolation.
	prog, d := setup(t, ``)
	txns := []ast.Goal{
		goalOf(t, prog, "ins.a"),
		goalOf(t, prog, "ins.b"),
		goalOf(t, prog, "ins.c"),
	}
	res, err := Serializable(prog, txns, d, opts())
	if err != nil {
		t.Fatal(err)
	}
	if !res.OK {
		t.Fatalf("commuting inserts flagged; anomaly:\n%s", res.Anomaly)
	}
}

func TestSerializableEmpty(t *testing.T) {
	prog, d := setup(t, ``)
	res, err := Serializable(prog, nil, d, opts())
	if err != nil || !res.OK {
		t.Fatal(err, res)
	}
}

func TestSerializableRefusesLargeN(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic for 8 transactions")
		}
	}()
	permutations(8)
}

func TestInvariantBudgetErrorSurfaces(t *testing.T) {
	src := `spin :- ins.a, del.a, spin.`
	prog, d := setup(t, src)
	o := engine.Options{MaxSteps: 200, MaxDepth: 100}
	_, err := Invariant(prog, goalOf(t, prog, "spin"), d, func(*db.DB) error { return nil }, o)
	if err == nil {
		t.Fatal("budget exhaustion not surfaced")
	}
}
