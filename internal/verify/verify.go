// Package verify provides exhaustive analysis of Transaction Datalog
// workflows, in the direction the paper's related-work section points
// (logic-based reasoning about workflows, Davulcu–Kifer et al. [34]):
//
//   - Invariant: does a property hold in EVERY database state reachable on
//     ANY execution path of a goal (not just on witness paths)?
//   - Finals: the exact set of final databases the goal can commit with.
//   - Serializable: is every outcome of a concurrent composition equal to
//     the outcome of SOME serial order of its components? (The property
//     the paper's isolation modality guarantees by construction.)
//
// All three build on the proof-theoretic engine's exhaustive search, so
// they are exact — and correspondingly exponential on adversarial inputs;
// budgets apply.
package verify

import (
	"errors"
	"fmt"

	"repro/internal/ast"
	"repro/internal/db"
	"repro/internal/engine"
)

// Violation describes an invariant breach.
type Violation struct {
	// Cause is the error the invariant function returned.
	Cause error
	// Trace is the execution prefix that reached the violating state.
	Trace []engine.TraceEntry
}

func (v *Violation) Error() string { return v.Cause.Error() }

// InvariantResult reports an Invariant check.
type InvariantResult struct {
	// Holds is true when no reachable state violates the invariant.
	Holds bool
	// Violation is the first breach found (when Holds is false).
	Violation *Violation
	// Executions counts complete executions explored.
	Executions int
	Stats      engine.Stats
}

// Invariant explores every execution path of goal from d and checks inv
// after every database change. The initial database is also checked.
// d is left unchanged.
func Invariant(prog *ast.Program, goal ast.Goal, d *db.DB, inv func(*db.DB) error, opts engine.Options) (*InvariantResult, error) {
	if err := inv(d); err != nil {
		return &InvariantResult{Violation: &Violation{Cause: err}}, nil
	}
	opts.Trace = true
	opts.Watch = inv
	// Tabling memoizes failed configurations; under a Watch those
	// configurations' intermediate states must still be re-visited on new
	// paths... they were already checked once when first explored, and the
	// watch is state-based, so pruning re-exploration is sound: a pruned
	// configuration cannot reach any state it did not already reach.
	eng := engine.New(prog, opts)
	count := 0
	_, res, err := eng.Solutions(goal, d, 0)
	_ = res
	if err != nil {
		var wv *engine.WatchViolation
		if errors.As(err, &wv) {
			return &InvariantResult{
				Violation:  &Violation{Cause: wv.Cause, Trace: wv.Trace},
				Executions: count,
				Stats:      res.Stats,
			}, nil
		}
		return nil, err
	}
	return &InvariantResult{
		Holds:      true,
		Executions: int(res.Stats.Successes),
		Stats:      res.Stats,
	}, nil
}

// Finals returns the set of final databases reachable by committing
// executions of goal, deduplicated by content. d is left unchanged.
func Finals(prog *ast.Program, goal ast.Goal, d *db.DB, opts engine.Options) ([]*db.DB, error) {
	eng := engine.New(prog, opts)
	sols, _, err := eng.Solutions(goal, d, 0)
	if err != nil {
		return nil, err
	}
	var out []*db.DB
	seen := map[[2]uint64][]*db.DB{}
	for _, s := range sols {
		fp := s.Final.Fingerprint()
		dup := false
		for _, prev := range seen[fp] {
			if prev.Equal(s.Final) {
				dup = true
				break
			}
		}
		if !dup {
			seen[fp] = append(seen[fp], s.Final)
			out = append(out, s.Final)
		}
	}
	return out, nil
}

// SerializableResult reports a Serializable check.
type SerializableResult struct {
	// OK is true when every concurrent outcome is a serial outcome.
	OK bool
	// Anomaly is a final database reachable concurrently but under no
	// serial order (when OK is false).
	Anomaly *db.DB
	// ConcurrentFinals and SerialFinals count the distinct outcomes.
	ConcurrentFinals int
	SerialFinals     int
}

// Serializable checks whether the concurrent composition of the given
// transactions only reaches outcomes that some serial order of the same
// transactions also reaches. It enumerates all len(txns)! serial orders,
// so keep the transaction count small.
func Serializable(prog *ast.Program, txns []ast.Goal, d *db.DB, opts engine.Options) (*SerializableResult, error) {
	if len(txns) == 0 {
		return &SerializableResult{OK: true}, nil
	}
	concFinals, err := Finals(prog, ast.NewConc(txns...), d, opts)
	if err != nil {
		return nil, err
	}
	var serialFinals []*db.DB
	perms := permutations(len(txns))
	for _, perm := range perms {
		ordered := make([]ast.Goal, len(txns))
		for i, j := range perm {
			ordered[i] = txns[j]
		}
		finals, err := Finals(prog, ast.NewSeq(ordered...), d, opts)
		if err != nil {
			return nil, err
		}
		serialFinals = append(serialFinals, finals...)
	}
	res := &SerializableResult{
		OK:               true,
		ConcurrentFinals: len(concFinals),
		SerialFinals:     len(serialFinals),
	}
	for _, cf := range concFinals {
		matched := false
		for _, sf := range serialFinals {
			if cf.Equal(sf) {
				matched = true
				break
			}
		}
		if !matched {
			res.OK = false
			res.Anomaly = cf
			return res, nil
		}
	}
	return res, nil
}

// permutations returns all permutations of 0..n-1.
func permutations(n int) [][]int {
	if n > 7 {
		panic(fmt.Sprintf("verify: refusing to enumerate %d! serial orders", n))
	}
	var out [][]int
	perm := make([]int, n)
	used := make([]bool, n)
	var rec func(i int)
	rec = func(i int) {
		if i == n {
			out = append(out, append([]int(nil), perm...))
			return
		}
		for v := 0; v < n; v++ {
			if used[v] {
				continue
			}
			used[v] = true
			perm[i] = v
			rec(i + 1)
			used[v] = false
		}
	}
	rec(0)
	return out
}
