package fragments_test

import (
	"fmt"

	"repro/internal/fragments"
	"repro/internal/parser"
)

// Classifying programs along the paper's complexity landscape.
func ExampleAnalyze() {
	programs := []string{
		// Nonrecursive: inside PTIME.
		`t :- p(X), del.p(X), ins.q(X).`,
		// Iteration only: fully bounded TD.
		`drain :- todo(X), del.todo(X), ins.done(X), drain.
		 drain :- empty.todo.`,
		// Non-tail recursion, no concurrency: sequential TD.
		`p :- q, p, r.
		 q :- ins.a.
		 r :- del.a.`,
		// Recursion under concurrent composition: full TD.
		`simulate :- item(X), del.item(X), (work(X) | simulate).
		 work(X) :- ins.done(X).`,
	}
	for _, src := range programs {
		prog, err := parser.Parse(src)
		if err != nil {
			panic(err)
		}
		fmt.Println(fragments.Analyze(prog).Fragment)
	}
	// Output:
	// nonrecursive TD
	// fully bounded TD
	// sequential TD
	// full TD
}
