package fragments

import (
	"testing"

	"repro/internal/parser"
)

func analyzeSrc(t *testing.T, src string) Report {
	t.Helper()
	prog, err := parser.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	return Analyze(prog)
}

func TestNonRecursive(t *testing.T) {
	r := analyzeSrc(t, `
		t :- p(X), del.p(X), ins.q(X).
		u :- t | t.
	`)
	if r.Fragment != NonRecursive {
		t.Fatalf("fragment = %v, want NonRecursive", r.Fragment)
	}
	if r.Features.Recursive {
		t.Fatal("recursion wrongly detected")
	}
	if !r.Features.UsesConcurrency || !r.Features.UsesDel {
		t.Fatalf("features wrong: %+v", r.Features)
	}
}

func TestInsOnly(t *testing.T) {
	r := analyzeSrc(t, `
		path(X, Y) :- edge(X, Y), ins.reached(Y).
		path(X, Y) :- edge(X, Z), path(Z, Y).
	`)
	if r.Fragment != InsOnly {
		t.Fatalf("fragment = %v, want InsOnly", r.Fragment)
	}
	if !r.Features.Recursive || r.Features.UsesDel {
		t.Fatalf("features wrong: %+v", r.Features)
	}
}

func TestFullyBoundedIteration(t *testing.T) {
	// Sequential tail recursion: the paper's iterated-protocol shape.
	r := analyzeSrc(t, `
		drain :- todo(X), del.todo(X), ins.done(X), drain.
		drain :- empty.todo.
	`)
	if r.Fragment != FullyBounded {
		t.Fatalf("fragment = %v, want FullyBounded", r.Fragment)
	}
	if !r.Features.TailOnlyRecursion {
		t.Fatalf("tail recursion not recognized: %+v", r.Features)
	}
}

func TestFullyBoundedAllowsConcElsewhere(t *testing.T) {
	// Concurrency among non-recursive subgoals keeps the program bounded:
	// process count stays goal-bounded.
	r := analyzeSrc(t, `
		step(W) :- t1(W) | t2(W).
		t1(W) :- ins.a(W).
		t2(W) :- ins.b(W).
		loop :- todo(X), del.todo(X), step(X), loop.
		loop :- empty.todo.
	`)
	if r.Fragment != FullyBounded {
		t.Fatalf("fragment = %v, want FullyBounded (features %+v)", r.Fragment, r.Features)
	}
}

func TestSequentialNonTailRecursion(t *testing.T) {
	// Recursion in a non-tail position: sequential TD (EXPTIME).
	r := analyzeSrc(t, `
		p :- q, p, r.
		q :- ins.a.
		r :- del.a.
	`)
	if r.Fragment != Sequential {
		t.Fatalf("fragment = %v, want Sequential", r.Fragment)
	}
	if r.Features.TailOnlyRecursion {
		t.Fatal("non-tail recursion labelled tail-only")
	}
}

func TestFullTDRecursionUnderConcurrency(t *testing.T) {
	// Example 3.2's shape: the simulation spawns a new concurrent process
	// per work item — recursion under |. This is what buys RE power.
	r := analyzeSrc(t, `
		simulate :- new_item(X), del.new_item(X), (workflow(X) | simulate).
		workflow(X) :- ins.done(X), del.done(X).
	`)
	if r.Fragment != Full {
		t.Fatalf("fragment = %v, want Full", r.Fragment)
	}
	if !r.Features.RecursionUnderConc {
		t.Fatalf("recursion under conc missed: %+v", r.Features)
	}
}

func TestMutualRecursionDetected(t *testing.T) {
	r := analyzeSrc(t, `
		even :- del.tick, odd.
		odd :- ins.tick, even.
	`)
	if !r.Features.Recursive {
		t.Fatal("mutual recursion missed")
	}
	if len(r.Features.RecursivePreds) != 2 {
		t.Fatalf("recursive preds = %v", r.Features.RecursivePreds)
	}
	if r.Fragment != FullyBounded {
		// Both recursive calls are in tail position.
		t.Fatalf("fragment = %v, want FullyBounded", r.Fragment)
	}
}

func TestSelfLoopDetected(t *testing.T) {
	r := analyzeSrc(t, `p :- p, ins.x.`)
	if !r.Features.Recursive {
		t.Fatal("self-loop missed")
	}
	if r.Features.TailOnlyRecursion {
		t.Fatal("head-position recursion is not tail recursion")
	}
}

func TestRecursionUnderIso(t *testing.T) {
	r := analyzeSrc(t, `
		p :- iso(p), del.x.
	`)
	if !r.Features.RecursionUnderIso {
		t.Fatalf("recursion under iso missed: %+v", r.Features)
	}
	if r.Fragment != Sequential {
		t.Fatalf("fragment = %v, want Sequential", r.Fragment)
	}
}

func TestSameNameDifferentArityNotRecursive(t *testing.T) {
	r := analyzeSrc(t, `
		p(X) :- p(X, X).
		p(X, Y) :- q(X, Y).
	`)
	if r.Features.Recursive {
		t.Fatal("p/1 -> p/2 is not a cycle")
	}
}

func TestAnalyzeGoalAddsConcurrency(t *testing.T) {
	// Corollary 4.6: a sequential rulebase (non-tail recursion — the stack
	// processes of the construction) driven by a concurrent goal reaches
	// full TD.
	prog, err := parser.Parse(`
		stack :- cmd(X), del.cmd(X), hold(X), stack.
		stack :- empty.cmd.
		hold(X) :- cmd(Y), del.cmd(Y), hold(Y), hold(X).
		hold(X) :- done.
	`)
	if err != nil {
		t.Fatal(err)
	}
	base := Analyze(prog)
	if base.Fragment != Sequential {
		t.Fatalf("rulebase fragment = %v, want Sequential", base.Fragment)
	}
	goal, _, err := parser.ParseGoal(`stack | stack | stack`, prog.VarHigh)
	if err != nil {
		t.Fatal(err)
	}
	r := AnalyzeGoal(prog, goal)
	if !r.Features.UsesConcurrency {
		t.Fatalf("goal concurrency missed: %+v", r.Features)
	}
	if r.Fragment != Full {
		t.Fatalf("fragment with concurrent goal = %v, want Full", r.Fragment)
	}
}

func TestGoalConcurrencyOverTailRecursionStaysBounded(t *testing.T) {
	// Bounded-width concurrency over tail-recursive (iteration-only)
	// processes keeps configurations polynomial: still fully bounded.
	prog, err := parser.Parse(`
		worker :- todo(X), del.todo(X), ins.done(X), worker.
		worker :- empty.todo.
	`)
	if err != nil {
		t.Fatal(err)
	}
	goal, _, err := parser.ParseGoal(`worker | worker`, prog.VarHigh)
	if err != nil {
		t.Fatal(err)
	}
	r := AnalyzeGoal(prog, goal)
	if r.Fragment != FullyBounded {
		t.Fatalf("fragment = %v, want FullyBounded (features %+v)", r.Fragment, r.Features)
	}
}

func TestNonTailCallFromOutsideSCCIsNotRecursion(t *testing.T) {
	// sat :- guess(1), check(1): guess is tail-recursive within its own
	// SCC; the non-tail call from sat (outside the SCC) is a plain
	// subroutine call and must not break tail-only classification.
	r := analyzeSrc(t, `
		guess(I) :- nomorevars(I).
		guess(I) :- qvar(I), ins.asg(I, t), succv(I, J), guess(J).
		guess(I) :- qvar(I), ins.asg(I, f), succv(I, J), guess(J).
		chk(C) :- nomoreclauses(C).
		chk(C) :- lit(C, X, S), asg(X, S), succc(C, D), chk(D).
		sat :- guess(1), chk(1), del.asg(1, t).
	`)
	if !r.Features.TailOnlyRecursion {
		t.Fatalf("tail-only recursion broken by extra-SCC call: %+v", r.Features)
	}
	if r.Fragment != FullyBounded {
		t.Fatalf("fragment = %v, want FullyBounded", r.Fragment)
	}
}

func TestFragmentStringsAndComplexity(t *testing.T) {
	for _, f := range []Fragment{NonRecursive, InsOnly, FullyBounded, Sequential, Full} {
		if f.String() == "" || f.Complexity() == "" {
			t.Errorf("fragment %d missing labels", f)
		}
	}
	if Fragment(99).String() == "" || Fragment(99).Complexity() == "" {
		t.Error("unknown fragment must still render")
	}
}

func TestOrderingMostRestrictedWins(t *testing.T) {
	// Ins-only AND tail-recursive: InsOnly is the label (more restricted).
	r := analyzeSrc(t, `
		grow :- seed(X), ins.grown(X), grow.
		grow :- true.
	`)
	if r.Fragment != InsOnly {
		t.Fatalf("fragment = %v, want InsOnly", r.Fragment)
	}
}
