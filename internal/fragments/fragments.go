// Package fragments statically classifies Transaction Datalog programs into
// the sublanguages whose data complexity Section 4 and Section 5 of the
// paper map out:
//
//	full TD                      RE-complete            (Theorem 4.4)
//	sequential TD (no "|")       EXPTIME-complete       (Theorem 4.5)
//	nonrecursive TD              inside PTIME           (Theorem 4.7)
//	ins-only TD                  Datalog-style fixpoint (Section 5 remark)
//	fully bounded TD             practical fragment     (Section 5)
//
// The analysis computes the call graph of derived predicates, its strongly
// connected components (recursion), where recursive calls sit (tail of a
// sequential body vs. under concurrent composition), and which update
// operations are used.
//
// Fully bounded TD is reconstructed from the constraints Section 5 states
// (the full definition is in the paper's appendix, which the supplied text
// omits): recursion is restricted to sequential *tail* recursion — iteration,
// "executing a workflow over-and-over until some condition is satisfied" —
// and no recursive call may occur inside a concurrent composition or an
// isolated subgoal, so the number of concurrently active processes is
// bounded by the goal, not by the data.
package fragments

import (
	"fmt"
	"sort"

	"repro/internal/ast"
	"repro/internal/term"
)

// Fragment labels a TD sublanguage, ordered from most to least restricted.
type Fragment uint8

// Fragments. A program is labelled with the most restricted fragment it
// falls into.
const (
	// NonRecursive: no recursion at all. Data complexity inside PTIME
	// (Theorem 4.7).
	NonRecursive Fragment = iota
	// InsOnly: recursion allowed, tuple tests and insertions but no
	// deletion. Execution is monotone, so Datalog-style fixpoint techniques
	// (tabling, magic sets) apply.
	InsOnly
	// FullyBounded: recursion only as sequential tail recursion
	// (iteration), never under "|" or iso; deletions allowed. The paper's
	// practical fragment (Section 5).
	FullyBounded
	// Sequential: no concurrent composition anywhere, unrestricted
	// recursion. EXPTIME-complete (Theorem 4.5).
	Sequential
	// Full: everything — recursion through concurrency. RE-complete
	// (Theorem 4.4); three concurrent sequential processes suffice
	// (Corollary 4.6).
	Full
)

func (f Fragment) String() string {
	switch f {
	case NonRecursive:
		return "nonrecursive TD"
	case InsOnly:
		return "ins-only TD"
	case FullyBounded:
		return "fully bounded TD"
	case Sequential:
		return "sequential TD"
	case Full:
		return "full TD"
	default:
		return fmt.Sprintf("fragment(%d)", uint8(f))
	}
}

// Complexity returns the data-complexity class the paper assigns to the
// fragment.
func (f Fragment) Complexity() string {
	switch f {
	case NonRecursive:
		return "inside PTIME (Theorem 4.7)"
	case InsOnly:
		return "Datalog-style fixpoint; tabling and magic sets apply (Section 5)"
	case FullyBounded:
		return "practical fragment: iteration only, bounded process count (Section 5)"
	case Sequential:
		return "EXPTIME-complete (Theorem 4.5)"
	case Full:
		return "RE-complete (Theorem 4.4; Corollary 4.6)"
	default:
		return "unknown"
	}
}

// Features itemizes what the analysis found.
type Features struct {
	UsesConcurrency bool // "|" occurs in some rule body
	UsesIsolation   bool // iso(...) occurs
	UsesIns         bool
	UsesDel         bool
	UsesEmpty       bool
	Recursive       bool // some derived predicate is in a call-graph cycle
	// TailOnlyRecursion is true when every recursive call occurs as the
	// final step of a sequential rule body (iteration).
	TailOnlyRecursion bool
	// RecursionUnderConc is true when a recursive call occurs inside a
	// concurrent composition — the feature that buys RE-completeness.
	RecursionUnderConc bool
	// RecursionUnderIso is true when a recursive call occurs inside iso.
	RecursionUnderIso bool
	// RecursivePreds lists the predicates (pred/arity strings) in cycles.
	RecursivePreds []string
}

// Report is the full analysis result.
type Report struct {
	Fragment Fragment
	Features Features
}

// Analyze classifies prog.
func Analyze(prog *ast.Program) Report {
	a := newAnalysis(prog)
	feats := a.features()
	return Report{Fragment: classify(feats), Features: feats}
}

// AnalyzeGoal classifies prog extended with a top-level goal, treating the
// goal as the body of an extra (non-recursive) rule. This matters because a
// goal like "p | p | p" introduces concurrency even over a purely
// sequential rulebase — exactly the setting of Corollary 4.6, where three
// concurrent sequential processes reach RE. Goal-level concurrency has a
// width fixed by the goal, so it does not by itself count as "recursion
// under concurrency" (no unbounded spawning); what pushes such a program to
// Full is the combination of concurrency with non-tail recursion in the
// rulebase (the stack processes of the construction).
func AnalyzeGoal(prog *ast.Program, goal ast.Goal) Report {
	a := newAnalysis(prog)
	feats := a.features()
	scanGoalFeatures(goal, &feats)
	return Report{Fragment: classify(feats), Features: feats}
}

func classify(f Features) Fragment {
	switch {
	case !f.Recursive:
		return NonRecursive
	case !f.UsesDel && !f.RecursionUnderIso:
		return InsOnly
	case f.TailOnlyRecursion && !f.RecursionUnderConc && !f.RecursionUnderIso:
		return FullyBounded
	case !f.UsesConcurrency:
		return Sequential
	default:
		return Full
	}
}

// analysis carries the call graph machinery.
type analysis struct {
	prog    *ast.Program
	nodes   []string       // pred/arity keys of derived predicates
	nodeIdx map[string]int //
	edges   map[int][]int  // call edges between derived predicates
	sccID   []int          // SCC id per node
	inCycle map[int]bool   // SCC of size > 1, or self-loop
}

func key(a term.Atom) string { return fmt.Sprintf("%s/%d", a.Pred, len(a.Args)) }

func newAnalysis(prog *ast.Program) *analysis {
	a := &analysis{prog: prog, nodeIdx: make(map[string]int), edges: make(map[int][]int)}
	for _, r := range prog.Rules {
		k := key(r.Head)
		if _, ok := a.nodeIdx[k]; !ok {
			a.nodeIdx[k] = len(a.nodes)
			a.nodes = append(a.nodes, k)
		}
	}
	for _, r := range prog.Rules {
		from := a.nodeIdx[key(r.Head)]
		ast.Walk(r.Body, func(g ast.Goal) bool {
			if l, ok := g.(*ast.Lit); ok && l.Op == ast.OpCall {
				if to, ok := a.nodeIdx[key(l.Atom)]; ok {
					a.edges[from] = append(a.edges[from], to)
				}
			}
			return true
		})
	}
	a.inCycle = a.cyclicNodes()
	return a
}

// cyclicNodes assigns SCC ids (Tarjan) and returns the nodes on some
// call-graph cycle: an SCC of size > 1, or a self-loop.
func (a *analysis) cyclicNodes() map[int]bool {
	n := len(a.nodes)
	index := make([]int, n)
	low := make([]int, n)
	onStack := make([]bool, n)
	a.sccID = make([]int, n)
	for i := range index {
		index[i] = -1
		a.sccID[i] = -1
	}
	var stack []int
	next := 0
	nscc := 0
	out := make(map[int]bool)

	var strongconnect func(v int)
	strongconnect = func(v int) {
		index[v] = next
		low[v] = next
		next++
		stack = append(stack, v)
		onStack[v] = true
		for _, w := range a.edges[v] {
			if index[w] == -1 {
				strongconnect(w)
				if low[w] < low[v] {
					low[v] = low[w]
				}
			} else if onStack[w] {
				if index[w] < low[v] {
					low[v] = index[w]
				}
			}
		}
		if low[v] == index[v] {
			var comp []int
			for {
				w := stack[len(stack)-1]
				stack = stack[:len(stack)-1]
				onStack[w] = false
				comp = append(comp, w)
				a.sccID[w] = nscc
				if w == v {
					break
				}
			}
			nscc++
			if len(comp) > 1 {
				for _, w := range comp {
					out[w] = true
				}
			} else {
				// Self-loop?
				v := comp[0]
				for _, w := range a.edges[v] {
					if w == v {
						out[v] = true
					}
				}
			}
		}
	}
	for v := 0; v < n; v++ {
		if index[v] == -1 {
			strongconnect(v)
		}
	}
	return out
}

// isRecursiveCall reports whether lit, occurring in a rule whose head is
// node from, is a *recursive* call: callee on a cycle and in the same SCC
// as the caller. Calls to a recursive predicate from outside its SCC are
// ordinary subroutine calls — they cannot grow the process tree unboundedly.
func (a *analysis) isRecursiveCall(from int, l *ast.Lit) bool {
	if l.Op != ast.OpCall {
		return false
	}
	idx, ok := a.nodeIdx[key(l.Atom)]
	if !ok || !a.inCycle[idx] {
		return false
	}
	return from >= 0 && a.sccID[from] == a.sccID[idx]
}

// callsRecursive reports whether g contains an intra-SCC recursive call
// relative to caller node from (at any depth through the goal structure,
// not through rules).
func (a *analysis) callsRecursive(from int, g ast.Goal) bool {
	found := false
	ast.Walk(g, func(sub ast.Goal) bool {
		if l, ok := sub.(*ast.Lit); ok && a.isRecursiveCall(from, l) {
			found = true
		}
		return !found
	})
	return found
}

func (a *analysis) features() Features {
	f := Features{TailOnlyRecursion: true}
	for idx, cyc := range a.inCycle {
		if cyc {
			f.RecursivePreds = append(f.RecursivePreds, a.nodes[idx])
			f.Recursive = true
		}
	}
	sort.Strings(f.RecursivePreds)
	for _, r := range a.prog.Rules {
		scanGoalFeatures(r.Body, &f)
		a.scanRecursionPlacement(a.nodeIdx[key(r.Head)], r.Body, true, &f)
	}
	if !f.Recursive {
		f.TailOnlyRecursion = false // vacuous; avoid claiming it
	}
	return f
}

// scanGoalFeatures records operator usage, ignoring recursion placement.
func scanGoalFeatures(g ast.Goal, f *Features) {
	ast.Walk(g, func(sub ast.Goal) bool {
		switch sub := sub.(type) {
		case *ast.Conc:
			f.UsesConcurrency = true
		case *ast.Iso:
			f.UsesIsolation = true
		case *ast.Empty:
			f.UsesEmpty = true
		case *ast.Lit:
			switch sub.Op {
			case ast.OpIns:
				f.UsesIns = true
			case ast.OpDel:
				f.UsesDel = true
			}
		}
		return true
	})
}

// scanRecursionPlacement walks the body of the rule whose head is node
// from, tracking whether the current position is a sequential tail
// position, and records recursion placement facts into f.
func (a *analysis) scanRecursionPlacement(from int, g ast.Goal, tail bool, f *Features) {
	switch g := g.(type) {
	case *ast.Lit:
		if a.isRecursiveCall(from, g) && !tail {
			f.TailOnlyRecursion = false
		}
	case *ast.Seq:
		for i, sub := range g.Goals {
			a.scanRecursionPlacement(from, sub, tail && i == len(g.Goals)-1, f)
		}
	case *ast.Conc:
		for _, sub := range g.Goals {
			if a.callsRecursive(from, sub) {
				f.RecursionUnderConc = true
				f.TailOnlyRecursion = false
			}
			a.scanRecursionPlacement(from, sub, false, f)
		}
	case *ast.Iso:
		if a.callsRecursive(from, g.Body) {
			f.RecursionUnderIso = true
			f.TailOnlyRecursion = false
		}
		a.scanRecursionPlacement(from, g.Body, false, f)
	}
}
