// Package idioms is a library of reusable Transaction Datalog fragments
// for process coordination: semaphores, mutexes, barriers, bounded
// buffers, and rendezvous. The paper positions TD against process algebras
// (CCS, CSP [62, 51]); these idioms show the standard coordination
// patterns arising from TD's primitives — tuples as tokens, queries as
// blocking waits, test-and-consume as acquisition, and the database as the
// only communication medium.
//
// Each constructor returns TD source text (rules and, where applicable,
// initial facts) parameterized by a name prefix, so multiple instances
// compose in one program. The operational reading assumes the simulator's
// guarded rule firing (test-and-consume is atomic); under the pure
// declarative semantics, wrap acquisitions in iso(...) as shown by
// package verify — or prove goals whose invariants you have verified.
package idioms

import (
	"fmt"
	"strings"
)

// Semaphore returns rules and facts for a counting semaphore holding n
// permits. Use: "<name>_acquire" blocks until a permit is available and
// consumes it; "<name>_release" returns one.
//
// Implementation: permits are plain tokens <name>_permit(i); acquisition
// is the atomic test-and-consume of any token.
// Acquisition moves a permit token into the held pool; release moves one
// back. Tracking permit identities (rather than minting fresh tokens on
// release) makes "permits + held = n" an invariant tests can check.
func Semaphore(name string, n int) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%% semaphore %s(%d)\n", name, n)
	fmt.Fprintf(&b, "%s_acquire :- %s_permit(P), del.%s_permit(P), ins.%s_held(P).\n", name, name, name, name)
	fmt.Fprintf(&b, "%s_release :- %s_held(P), del.%s_held(P), ins.%s_permit(P).\n", name, name, name, name)
	for i := 1; i <= n; i++ {
		fmt.Fprintf(&b, "%s_permit(%d).\n", name, i)
	}
	return b.String()
}

// Mutex is a binary semaphore with a with-lock wrapper: "<name>_lock",
// "<name>_unlock".
func Mutex(name string) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%% mutex %s\n", name)
	fmt.Fprintf(&b, "%s_lock :- %s_token, del.%s_token.\n", name, name, name)
	fmt.Fprintf(&b, "%s_unlock :- ins.%s_token.\n", name, name)
	fmt.Fprintf(&b, "%s_token.\n", name)
	return b.String()
}

// Barrier returns rules for a k-party single-use barrier: each party runs
// "<name>_arrive(Id)" with a distinct id and is released only when all k
// have arrived.
//
// Implementation: arrivals accumulate as tuples; the barrier opens when
// the k-th arrival inserts the open flag, which every waiter's final query
// blocks on. Counting is by chaining: arrival i consumes slot i and
// releases slot i+1; slot k+1 opens the barrier.
func Barrier(name string, k int) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%% barrier %s(%d)\n", name, k)
	fmt.Fprintf(&b, "%s_arrive(Id) :- %s_slot(S), del.%s_slot(S), add(S, 1, T), ins.%s_slot(T), ins.%s_arrived(Id), %s_wait(S).\n",
		name, name, name, name, name, name)
	fmt.Fprintf(&b, "%s_wait(S) :- S >= %d, ins.%s_open.\n", name, k, name)
	fmt.Fprintf(&b, "%s_wait(S) :- S < %d, %s_open.\n", name, k, name)
	fmt.Fprintf(&b, "%s_slot(1).\n", name)
	return b.String()
}

// Buffer returns rules for a bounded buffer (producer/consumer channel) of
// capacity cap: "<name>_put(V)" blocks when full, "<name>_get(V)" blocks
// when empty and binds V to a (nondeterministically chosen) buffered
// value.
//
// Implementation: capacity is a pool of cell tokens; put consumes a cell
// and stores the value, get consumes a stored value and frees its cell.
func Buffer(name string, capacity int) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%% bounded buffer %s(%d)\n", name, capacity)
	fmt.Fprintf(&b, "%s_put(V) :- %s_cell(C), del.%s_cell(C), ins.%s_item(C, V).\n", name, name, name, name)
	fmt.Fprintf(&b, "%s_get(V) :- %s_item(C, V), del.%s_item(C, V), ins.%s_cell(C).\n", name, name, name, name)
	for i := 1; i <= capacity; i++ {
		fmt.Fprintf(&b, "%s_cell(%d).\n", name, i)
	}
	return b.String()
}

// Rendezvous returns rules for a two-party synchronization point: both
// "<name>_left" and "<name>_right" complete only after both have started
// (a CCS-style handshake through the database).
func Rendezvous(name string) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%% rendezvous %s\n", name)
	fmt.Fprintf(&b, "%s_left :- ins.%s_lready, %s_rready.\n", name, name, name)
	fmt.Fprintf(&b, "%s_right :- ins.%s_rready, %s_lready.\n", name, name, name)
	return b.String()
}

// Once returns rules for do-once initialization: any number of concurrent
// "<name>_do" calls complete, but the guarded body token is produced
// exactly once.
func Once(name string) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%% once %s\n", name)
	fmt.Fprintf(&b, "%s_do :- %s_pending, del.%s_pending, ins.%s_done_marker.\n", name, name, name, name)
	fmt.Fprintf(&b, "%s_do :- %s_done_marker.\n", name, name)
	fmt.Fprintf(&b, "%s_pending.\n", name)
	return b.String()
}
