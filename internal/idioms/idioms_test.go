package idioms

import (
	"fmt"
	"strings"
	"testing"
	"time"

	"repro/internal/db"
	"repro/internal/engine"
	"repro/internal/parser"
	"repro/internal/sim"
	"repro/internal/verify"
)

// simRun executes goal over src in the operational simulator.
func simRun(t *testing.T, src, goal string, seed int64) *sim.Result {
	t.Helper()
	prog, err := parser.Parse(src)
	if err != nil {
		t.Fatalf("idiom source does not parse: %v\n%s", err, src)
	}
	g, _, err := parser.ParseGoal(goal, prog.VarHigh)
	if err != nil {
		t.Fatal(err)
	}
	d, err := db.FromFacts(prog.Facts)
	if err != nil {
		t.Fatal(err)
	}
	return sim.New(prog, sim.Options{Timeout: 5 * time.Second, Seed: seed, Shuffle: seed != 0}).Run(g, d)
}

// proveRun executes goal over src in the prover.
func proveRun(t *testing.T, src, goal string) (*engine.Result, *db.DB) {
	t.Helper()
	prog, err := parser.Parse(src)
	if err != nil {
		t.Fatalf("idiom source does not parse: %v\n%s", err, src)
	}
	g, _, err := parser.ParseGoal(goal, prog.VarHigh)
	if err != nil {
		t.Fatal(err)
	}
	d, err := db.FromFacts(prog.Facts)
	if err != nil {
		t.Fatal(err)
	}
	res, err := engine.NewDefault(prog).Prove(g, d)
	if err != nil {
		t.Fatal(err)
	}
	return res, d
}

func TestSemaphoreLimitsConcurrencySim(t *testing.T) {
	src := Semaphore("sem", 2) + `
		worker(W) :- sem_acquire, ins.inside(W), del.inside(W), ins.served(W), sem_release.
	`
	for seed := int64(0); seed < 8; seed++ {
		res := simRun(t, src, "worker(a) | worker(b) | worker(c) | worker(d)", seed)
		if !res.Completed {
			t.Fatalf("seed %d: %v", seed, res.Err)
		}
		if res.Final.Count("served", 1) != 4 {
			t.Fatalf("seed %d: not all served", seed)
		}
		if res.Final.Count("sem_permit", 1) != 2 || res.Final.Count("sem_held", 1) != 0 {
			t.Fatalf("seed %d: permits not restored:\n%s", seed, res.Final)
		}
	}
}

func TestSemaphorePermitInvariantVerified(t *testing.T) {
	// Exhaustively, over every interleaving: held permits never exceed the
	// pool and tokens are never duplicated. As the package doc warns, the
	// pure declarative semantics requires iso(...) around acquire/release:
	// without it, two processes can bind the same permit token before
	// either deletes it (deleting an absent tuple is a no-op), duplicating
	// the token — the verifier finds that interleaving if iso is dropped.
	src := Semaphore("sem", 2) + `
		worker(W) :- iso(sem_acquire), ins.served(W), iso(sem_release).
	`
	prog := parser.MustParse(src)
	goal := parser.MustParseGoal("worker(a) | worker(b) | worker(c)", prog.VarHigh)
	d, _ := db.FromFacts(prog.Facts)
	res, err := verify.Invariant(prog, goal, d, func(d *db.DB) error {
		p, h := d.Count("sem_permit", 1), d.Count("sem_held", 1)
		if h > 2 || p+h > 2 {
			return fmt.Errorf("permits %d + held %d exceeds pool 2", p, h)
		}
		return nil
	}, engine.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if !res.Holds {
		t.Fatalf("semaphore invariant violated: %v\n%v", res.Violation.Cause, res.Violation.Trace)
	}
}

func TestMutexCriticalSection(t *testing.T) {
	src := Mutex("m") + `
		cs(W) :- m_lock, ins.in_cs(W), del.in_cs(W), m_unlock, ins.done(W).
	`
	mon := func(d *db.DB) error {
		if d.Count("in_cs", 1) > 1 {
			return fmt.Errorf("two processes in the critical section")
		}
		return nil
	}
	prog := parser.MustParse(src)
	g := parser.MustParseGoal("cs(a) | cs(b) | cs(c)", prog.VarHigh)
	d, _ := db.FromFacts(prog.Facts)
	res := sim.New(prog, sim.Options{Timeout: 5 * time.Second, Shuffle: true, Seed: 3,
		Monitors: []sim.MonitorFunc{mon}}).Run(g, d)
	if !res.Completed {
		t.Fatalf("mutex workers failed: %v", res.Err)
	}
	if res.Final.Count("done", 1) != 3 || res.Final.Count("m_token", 0) != 1 {
		t.Fatalf("final state wrong:\n%s", res.Final)
	}
}

func TestBarrierReleasesAllTogether(t *testing.T) {
	src := Barrier("bar", 3) + `
		party(Id) :- ins.before(Id), bar_arrive(Id), ins.after(Id).
	`
	res := simRun(t, src, "party(p1) | party(p2) | party(p3)", 0)
	if !res.Completed {
		t.Fatalf("barrier run failed: %v", res.Err)
	}
	if res.Final.Count("after", 1) != 3 || !res.Final.Contains("bar_open", nil) {
		t.Fatalf("barrier final wrong:\n%s", res.Final)
	}
}

func TestBarrierBlocksUntilAllArrive(t *testing.T) {
	// Only 2 of 3 parties: the run must deadlock (nobody passes).
	src := Barrier("bar", 3) + `
		party(Id) :- bar_arrive(Id), ins.after(Id).
	`
	res := simRun(t, src, "party(p1) | party(p2)", 0)
	if res.Completed {
		t.Fatal("barrier released with a missing party")
	}
	if res.Final.Count("after", 1) != 0 {
		t.Fatalf("some party passed early:\n%s", res.Final)
	}
}

func TestBarrierOrderingProperty(t *testing.T) {
	// With traces: every "after" event comes after all three arrivals.
	src := Barrier("bar", 3) + `
		party(Id) :- bar_arrive(Id), ins.after(Id).
	`
	prog := parser.MustParse(src)
	g := parser.MustParseGoal("party(p1) | party(p2) | party(p3)", prog.VarHigh)
	for seed := int64(0); seed < 6; seed++ {
		d, _ := db.FromFacts(prog.Facts)
		res := sim.New(prog, sim.Options{Timeout: 5 * time.Second, Trace: true, Seed: seed, Shuffle: true}).Run(g, d)
		if !res.Completed {
			t.Fatalf("seed %d: %v", seed, res.Err)
		}
		var lastArrive, firstAfter int64 = 0, 1 << 62
		for _, e := range res.Events {
			if e.Op == "ins" && strings.HasPrefix(e.Atom, "bar_arrived(") && e.Seq > lastArrive {
				lastArrive = e.Seq
			}
			if e.Op == "ins" && strings.HasPrefix(e.Atom, "after(") && e.Seq < firstAfter {
				firstAfter = e.Seq
			}
		}
		if firstAfter < lastArrive {
			t.Fatalf("seed %d: a party passed the barrier before the last arrival (after@%d < arrive@%d)",
				seed, firstAfter, lastArrive)
		}
	}
}

func TestBufferProducerConsumer(t *testing.T) {
	src := Buffer("ch", 2) + `
		producer :- item(V), del.item(V), ch_put(V), producer.
		producer :- empty.item, ch_put(-1).
		consumer :- ch_get(V), consume(V).
		consume(-1) :- ins.consumer_done.
		consume(V) :- V >= 0, ins.got(V), consumer.
	`
	var facts strings.Builder
	for i := 0; i < 6; i++ {
		fmt.Fprintf(&facts, "item(%d).\n", i)
	}
	res := simRun(t, src+facts.String(), "producer | consumer", 0)
	if !res.Completed {
		t.Fatalf("producer/consumer failed: %v", res.Err)
	}
	if res.Final.Count("got", 1) != 6 {
		t.Fatalf("consumed %d/6:\n%s", res.Final.Count("got", 1), res.Final)
	}
	if !res.Final.Contains("consumer_done", nil) {
		t.Fatal("consumer did not see the close sentinel")
	}
}

func TestBufferCapacityRespected(t *testing.T) {
	// Monitor: never more than cap items buffered. The consumer's first
	// rule must carry a real guard (the test-and-consume of a buffered
	// item inlined) — a bare ch_get call would make the rule always
	// fireable under committed choice, and the consumer would commit to
	// waiting for one more item instead of terminating.
	src := Buffer("ch", 2) + `
		producer :- item(V), del.item(V), ch_put(V), producer.
		producer :- empty.item, ins.prod_done.
		consumer :- ch_item(C, V), del.ch_item(C, V), ins.ch_cell(C), ins.got(V), consumer.
		consumer :- prod_done, empty.ch_item.
	`
	var facts strings.Builder
	for i := 0; i < 5; i++ {
		fmt.Fprintf(&facts, "item(%d).\n", i)
	}
	mon := func(d *db.DB) error {
		if n := d.Count("ch_item", 2); n > 2 {
			return fmt.Errorf("%d items in a capacity-2 buffer", n)
		}
		return nil
	}
	prog := parser.MustParse(src + facts.String())
	g := parser.MustParseGoal("producer | consumer", prog.VarHigh)
	d, _ := db.FromFacts(prog.Facts)
	res := sim.New(prog, sim.Options{Timeout: 5 * time.Second, Monitors: []sim.MonitorFunc{mon}}).Run(g, d)
	if !res.Completed {
		t.Fatalf("bounded buffer run failed: %v", res.Err)
	}
	if res.Final.Count("got", 1) != 5 {
		t.Fatalf("consumed %d/5", res.Final.Count("got", 1))
	}
}

func TestRendezvousBothOrNeither(t *testing.T) {
	src := Rendezvous("rv") + `
		a :- rv_left, ins.a_done.
		b :- rv_right, ins.b_done.
	`
	res := simRun(t, src, "a | b", 0)
	if !res.Completed {
		t.Fatalf("rendezvous failed: %v", res.Err)
	}
	// One party alone blocks forever.
	res2 := simRun(t, src, "a", 0)
	if res2.Completed {
		t.Fatal("one-sided rendezvous completed")
	}
}

func TestOnceExactlyOnce(t *testing.T) {
	src := Once("init") + `
		user(W) :- init_do, ins.proceeded(W).
	`
	res := simRun(t, src, "user(a) | user(b) | user(c)", 0)
	if !res.Completed {
		t.Fatalf("once users failed: %v", res.Err)
	}
	if res.Final.Count("proceeded", 1) != 3 {
		t.Fatal("not all users proceeded")
	}
	if res.Final.Count("init_done_marker", 0) != 1 || res.Final.Count("init_pending", 0) != 0 {
		t.Fatalf("once state wrong:\n%s", res.Final)
	}
}

func TestIdiomsComposeUnderProver(t *testing.T) {
	// Mutex + buffer in one program, proved declaratively.
	src := Mutex("m") + Buffer("ch", 1) + `
		t :- m_lock, ch_put(7), m_unlock, ch_get(V), ins.out(V).
	`
	res, d := proveRun(t, src, "t")
	if !res.Success {
		t.Fatal("composed idioms failed under prover")
	}
	if d.Count("out", 1) != 1 {
		t.Fatalf("output missing:\n%s", d)
	}
}

func TestAllIdiomSourcesParse(t *testing.T) {
	for name, src := range map[string]string{
		"semaphore":  Semaphore("s", 3),
		"mutex":      Mutex("m"),
		"barrier":    Barrier("b", 4),
		"buffer":     Buffer("c", 3),
		"rendezvous": Rendezvous("r"),
		"once":       Once("o"),
	} {
		if _, err := parser.Parse(src); err != nil {
			t.Errorf("%s does not parse: %v\n%s", name, err, src)
		}
	}
}
