package sim

import (
	"fmt"
	"sort"
	"strings"
)

// Summary aggregates an event trace into per-process and per-operation
// statistics — the monitoring/tracking view the paper says workflow
// management needs ("monitoring, tracking and querying the status of
// workflow activities").
type Summary struct {
	// Ops counts events by operation kind (query/ins/del/call/...).
	Ops map[string]int64
	// PerProcess counts events by process id.
	PerProcess map[int]int64
	// Processes is the number of distinct processes that executed events.
	Processes int
	// AtomPrefixCounts counts ins events by predicate name — the history
	// accumulation profile.
	AtomPrefixCounts map[string]int64
}

// Summarize aggregates events (from Options.Trace).
func Summarize(events []Event) *Summary {
	s := &Summary{
		Ops:              make(map[string]int64),
		PerProcess:       make(map[int]int64),
		AtomPrefixCounts: make(map[string]int64),
	}
	for _, e := range events {
		s.Ops[e.Op]++
		s.PerProcess[e.Task]++
		if e.Op == "ins" {
			pred := e.Atom
			if i := strings.IndexByte(pred, '('); i >= 0 {
				pred = pred[:i]
			}
			s.AtomPrefixCounts[pred]++
		}
	}
	s.Processes = len(s.PerProcess)
	return s
}

// String renders the summary compactly.
func (s *Summary) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%d processes\n", s.Processes)
	var ops []string
	for op := range s.Ops {
		ops = append(ops, op)
	}
	sort.Strings(ops)
	for _, op := range ops {
		fmt.Fprintf(&b, "  %-8s %d\n", op, s.Ops[op])
	}
	return b.String()
}

// AgentUtilization extracts per-agent task counts from a trace of the
// workflow compiler's "ins doing(Agent, Item, Task)" events.
func AgentUtilization(events []Event) map[string]int {
	out := make(map[string]int)
	for _, e := range events {
		if e.Op != "ins" || !strings.HasPrefix(e.Atom, "doing(") {
			continue
		}
		rest := strings.TrimPrefix(e.Atom, "doing(")
		if i := strings.IndexByte(rest, ','); i >= 0 {
			out[rest[:i]]++
		}
	}
	return out
}
