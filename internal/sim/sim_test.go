package sim

import (
	"errors"
	"fmt"
	"testing"
	"time"

	"repro/internal/db"
	"repro/internal/parser"
	"repro/internal/term"
)

func runSim(t *testing.T, src, goal string, opts Options) *Result {
	t.Helper()
	prog, err := parser.Parse(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	g, _, err := parser.ParseGoal(goal, prog.VarHigh)
	if err != nil {
		t.Fatalf("parse goal: %v", err)
	}
	d, err := db.FromFacts(prog.Facts)
	if err != nil {
		t.Fatal(err)
	}
	return New(prog, opts).Run(g, d)
}

func short(opts ...func(*Options)) Options {
	o := Options{Timeout: 2 * time.Second}
	for _, f := range opts {
		f(&o)
	}
	return o
}

func TestSimpleSequence(t *testing.T) {
	res := runSim(t, `p(a).`, `p(X), ins.q(X), del.p(X)`, short())
	if !res.Completed {
		t.Fatalf("run failed: %v", res.Err)
	}
	if !res.Final.Contains("q", []term.Term{term.NewSym("a")}) {
		t.Fatalf("final db wrong:\n%s", res.Final)
	}
	if res.Final.Contains("p", []term.Term{term.NewSym("a")}) {
		t.Fatal("p(a) not deleted")
	}
}

func TestInputDBUntouched(t *testing.T) {
	prog := parser.MustParse(`p(a).`)
	g := parser.MustParseGoal(`del.p(a)`, prog.VarHigh)
	d, _ := db.FromFacts(prog.Facts)
	res := New(prog, short()).Run(g, d)
	if !res.Completed {
		t.Fatal(res.Err)
	}
	if !d.Contains("p", []term.Term{term.NewSym("a")}) {
		t.Fatal("simulator mutated the input database")
	}
}

func TestBlockingReadUnblockedByWriter(t *testing.T) {
	// The consumer blocks on m(X) until the producer writes it.
	src := `
		producer :- ins.ready, ins.m(42).
		consumer :- m(X), ins.got(X).
	`
	res := runSim(t, src, `consumer | producer`, short())
	if !res.Completed {
		t.Fatalf("run failed: %v", res.Err)
	}
	if !res.Final.Contains("got", []term.Term{term.NewInt(42)}) {
		t.Fatalf("consumer missed message:\n%s", res.Final)
	}
}

func TestDeadlockDetected(t *testing.T) {
	// Both processes wait for the other's output: classic deadlock.
	src := `
		a :- bsig, ins.asig.
		b :- asig, ins.bsig.
	`
	res := runSim(t, src, `a | b`, short())
	if res.Completed {
		t.Fatal("deadlocked run completed")
	}
	if !errors.Is(res.Err, ErrDeadlock) {
		t.Fatalf("err = %v, want ErrDeadlock", res.Err)
	}
}

func TestSingleBlockedProcessIsDeadlock(t *testing.T) {
	res := runSim(t, ``, `nosuchtuple(x)`, short())
	if res.Completed || !errors.Is(res.Err, ErrDeadlock) {
		t.Fatalf("err = %v, want ErrDeadlock", res.Err)
	}
}

func TestHandshakeProtocol(t *testing.T) {
	src := `
		ping :- ins.req, ack, del.ack, ins.ping_done.
		pong :- req, del.req, ins.ack, ins.pong_done.
	`
	res := runSim(t, src, `ping | pong`, short())
	if !res.Completed {
		t.Fatalf("handshake failed: %v", res.Err)
	}
	for _, p := range []string{"ping_done", "pong_done"} {
		if res.Final.Count(p, 0) != 1 {
			t.Errorf("%s missing", p)
		}
	}
}

func TestGuardAtomicityNoDoubleAllocation(t *testing.T) {
	// Example 3.3's shared-resource idiom: one agent, two claimants. The
	// guard available(A), del.available(A) must be atomic so exactly one
	// claim wins at a time; the other blocks until release.
	src := `
		available(ann).
		claim(W) :- available(A), del.available(A), ins.busy(A, W),
		            del.busy(A, W), ins.served(W), ins.available(A).
	`
	busyCount := func(d *db.DB) error {
		if n := d.Count("busy", 2); n > 1 {
			return fmt.Errorf("%d agents busy, pool has 1", n)
		}
		return nil
	}
	for seed := int64(0); seed < 10; seed++ {
		res := runSim(t, src, `claim(w1) | claim(w2) | claim(w3)`, short(func(o *Options) {
			o.Seed = seed
			o.Shuffle = true
			o.Monitors = []MonitorFunc{busyCount}
		}))
		if !res.Completed {
			t.Fatalf("seed %d: run failed: %v", seed, res.Err)
		}
		if res.Final.Count("served", 1) != 3 {
			t.Fatalf("seed %d: not all work served:\n%s", seed, res.Final)
		}
		if res.Final.Count("available", 1) != 1 {
			t.Fatalf("seed %d: agent not released:\n%s", seed, res.Final)
		}
	}
}

func TestMonitorViolationFailsRun(t *testing.T) {
	src := `grow :- ins.x(1), ins.x(2), ins.x(3).`
	limit := func(d *db.DB) error {
		if d.Count("x", 1) > 2 {
			return fmt.Errorf("too many x")
		}
		return nil
	}
	res := runSim(t, src, `grow`, short(func(o *Options) {
		o.Monitors = []MonitorFunc{limit}
	}))
	if res.Completed {
		t.Fatal("run completed despite invariant violation")
	}
	if res.Err == nil || !errors.Is(res.Err, res.Err) {
		t.Fatalf("err = %v", res.Err)
	}
}

func TestIsolationSerializes(t *testing.T) {
	// Two isolated read-modify-write increments must never lose an update.
	src := `
		counter(0).
		bump :- counter(N), del.counter(N), add(N, 1, M), ins.counter(M).
		worker :- iso(bump), iso(bump).
	`
	for seed := int64(0); seed < 8; seed++ {
		res := runSim(t, src, `worker | worker`, short(func(o *Options) {
			o.Seed = seed
			o.Shuffle = true
		}))
		if !res.Completed {
			t.Fatalf("seed %d: %v", seed, res.Err)
		}
		if !res.Final.Contains("counter", []term.Term{term.NewInt(4)}) {
			t.Fatalf("seed %d: lost update under isolation:\n%s", seed, res.Final)
		}
	}
}

func TestNestedIso(t *testing.T) {
	src := `
		inner :- ins.i.
		outer :- iso(inner), ins.o.
	`
	res := runSim(t, src, `iso(outer)`, short())
	if !res.Completed {
		t.Fatalf("nested iso failed: %v", res.Err)
	}
}

func TestRecursiveSpawning(t *testing.T) {
	// Example 3.2: the simulation spawns a workflow per work item,
	// recursing concurrently; the environment seeds the items.
	src := `
		item(w1). item(w2). item(w3).
		simulate :- item(X), del.item(X), (workflow(X) | simulate).
		simulate :- empty.item.
		workflow(X) :- ins.started(X), ins.finished(X).
	`
	res := runSim(t, src, `simulate`, short())
	if !res.Completed {
		t.Fatalf("simulate failed: %v", res.Err)
	}
	if res.Final.Count("finished", 1) != 3 {
		t.Fatalf("items not all processed:\n%s", res.Final)
	}
	if res.Spawned < 4 {
		t.Fatalf("spawned = %d, expected one process per item plus root", res.Spawned)
	}
}

func TestEnvironmentAsProcess(t *testing.T) {
	// The environment injects work; the workflow loop drains it. From the
	// paper: "we can treat the environment simply as another process".
	src := `
		environment :- ins.item(a), ins.item(b), ins.eof.
		loop :- item(X), del.item(X), ins.done(X), loop.
		loop :- eof, empty.item.
	`
	res := runSim(t, src, `environment | loop`, short())
	if !res.Completed {
		t.Fatalf("env|loop failed: %v", res.Err)
	}
	if res.Final.Count("done", 1) != 2 {
		t.Fatalf("not all environment items processed:\n%s", res.Final)
	}
}

func TestOutputBindingsFromCalls(t *testing.T) {
	src := `
		mk(X, Y) :- add(X, 1, Y).
		use :- mk(5, Z), ins.result(Z).
	`
	res := runSim(t, src, `use`, short())
	if !res.Completed {
		t.Fatalf("use failed: %v", res.Err)
	}
	if !res.Final.Contains("result", []term.Term{term.NewInt(6)}) {
		t.Fatalf("output binding lost:\n%s", res.Final)
	}
}

func TestSharedUnboundVarRejected(t *testing.T) {
	res := runSim(t, `p(a). q(a).`, `p(X) | q(X)`, short())
	if res.Completed {
		t.Fatal("shared unbound variable across | accepted")
	}
	if res.Err == nil {
		t.Fatal("no error reported")
	}
}

func TestSharedBoundVarOK(t *testing.T) {
	res := runSim(t, `p(a). q(a).`, `p(X), (ins.r1(X) | ins.r2(X))`, short())
	if !res.Completed {
		t.Fatalf("bound shared var rejected: %v", res.Err)
	}
	if !res.Final.Contains("r1", []term.Term{term.NewSym("a")}) ||
		!res.Final.Contains("r2", []term.Term{term.NewSym("a")}) {
		t.Fatalf("final db wrong:\n%s", res.Final)
	}
}

func TestUndefinedPredicateFails(t *testing.T) {
	// A call with rules for a different arity is an undefined predicate.
	res := runSim(t, `r(a) :- true.`, `r(a, b)`, short())
	if res.Completed {
		t.Fatal("undefined predicate call completed")
	}
}

func TestBuiltinFailureFailsRun(t *testing.T) {
	res := runSim(t, ``, `ins.x(5), x(N), N > 10`, short())
	if res.Completed {
		t.Fatal("failed comparison completed")
	}
}

func TestTraceRecorded(t *testing.T) {
	res := runSim(t, `p(a).`, `p(X), ins.q(X)`, short(func(o *Options) { o.Trace = true }))
	if !res.Completed {
		t.Fatal(res.Err)
	}
	if len(res.Events) < 2 {
		t.Fatalf("events = %v", res.Events)
	}
	evs := SortedEvents(res.Events)
	last := evs[len(evs)-1]
	if last.Op != "ins" || last.Atom != "q(a)" {
		t.Fatalf("last event = %v", last)
	}
}

func TestOpBudget(t *testing.T) {
	src := `
		spin :- ins.t, del.t, spin.
		spin :- stop.
	`
	res := runSim(t, src, `spin`, short(func(o *Options) { o.MaxOps = 500 }))
	if res.Completed || !errors.Is(res.Err, ErrOpBudget) {
		t.Fatalf("err = %v, want ErrOpBudget", res.Err)
	}
}

func TestTimeout(t *testing.T) {
	src := `
		waiter :- never_coming, ins.x.
		keepalive :- tick, keepalive.
		keepalive :- stopnow.
	`
	// waiter blocks; keepalive spins forever so there is no deadlock —
	// only the timeout can end this.
	prog := parser.MustParse(src)
	g := parser.MustParseGoal(`waiter | keepalive`, prog.VarHigh)
	d := db.New()
	d.Insert("tick", nil)
	res := New(prog, Options{Timeout: 200 * time.Millisecond, MaxOps: 100_000_000}).Run(g, d)
	if res.Completed {
		t.Fatal("run completed")
	}
	if !errors.Is(res.Err, ErrTimeout) && !errors.Is(res.Err, ErrOpBudget) {
		t.Fatalf("err = %v, want timeout", res.Err)
	}
}

func TestManyWorkersThroughput(t *testing.T) {
	// A small stress test: 20 items, 4 concurrent workers draining them.
	src := `
		worker :- item(X), del.item(X), ins.done(X), worker.
		worker :- empty.item.
	`
	prog := parser.MustParse(src)
	d := db.New()
	for i := 0; i < 20; i++ {
		d.Insert("item", []term.Term{term.NewInt(int64(i))})
	}
	g := parser.MustParseGoal(`worker | worker | worker | worker`, prog.VarHigh)
	res := New(prog, Options{Timeout: 5 * time.Second, Shuffle: true, Seed: 3}).Run(g, d)
	if !res.Completed {
		t.Fatalf("workers failed: %v", res.Err)
	}
	if res.Final.Count("done", 1) != 20 {
		t.Fatalf("done = %d, want 20", res.Final.Count("done", 1))
	}
	if res.Final.Count("item", 1) != 0 {
		t.Fatal("items left over")
	}
}

func TestCooperatingWorkflowsExample34(t *testing.T) {
	// Two workflows over related parts, synchronizing through the DB: wf2
	// waits for wf1's measurement before verifying.
	src := `
		wf1(P) :- ins.prepped(P), ins.measured(P, 42).
		wf2(P) :- measured(P, V), ins.verified(P, V).
	`
	res := runSim(t, src, `wf2(part1) | wf1(part1)`, short())
	if !res.Completed {
		t.Fatalf("cooperating workflows failed: %v", res.Err)
	}
	if !res.Final.Contains("verified", []term.Term{term.NewSym("part1"), term.NewInt(42)}) {
		t.Fatalf("verification missing:\n%s", res.Final)
	}
}

func TestSummarize(t *testing.T) {
	res := runSim(t, `p(a).`, `p(X), ins.q(X), del.p(X)`, short(func(o *Options) { o.Trace = true }))
	if !res.Completed {
		t.Fatal(res.Err)
	}
	s := Summarize(res.Events)
	if s.Processes != 1 {
		t.Fatalf("processes = %d", s.Processes)
	}
	if s.Ops["ins"] != 1 || s.Ops["del"] != 1 || s.Ops["query"] != 1 {
		t.Fatalf("ops = %v", s.Ops)
	}
	if s.AtomPrefixCounts["q"] != 1 {
		t.Fatalf("prefix counts = %v", s.AtomPrefixCounts)
	}
	if s.String() == "" {
		t.Fatal("empty render")
	}
}

func TestAgentUtilization(t *testing.T) {
	events := []Event{
		{Op: "ins", Atom: "doing(ann, w1, prep)"},
		{Op: "ins", Atom: "doing(ann, w2, prep)"},
		{Op: "ins", Atom: "doing(bob, w1, scan)"},
		{Op: "del", Atom: "doing(ann, w1, prep)"},
		{Op: "ins", Atom: "other(x)"},
	}
	u := AgentUtilization(events)
	if u["ann"] != 2 || u["bob"] != 1 || len(u) != 2 {
		t.Fatalf("utilization = %v", u)
	}
}
