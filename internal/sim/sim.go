// Package sim is the operational workflow simulator: it runs Transaction
// Datalog goals the way a production workflow engine would, rather than the
// way a theorem prover would.
//
// Where the proof-theoretic engine (package engine) backtracks over every
// interleaving to decide executional entailment, the simulator makes
// committed choices and executes concurrent composition with real
// goroutines over one shared, lock-protected database:
//
//   - each branch of "|" runs in its own goroutine; all must complete;
//   - a query that finds no matching tuple BLOCKS until another process
//     changes the database (one process reads what another writes — the
//     paper's database-mediated communication, realized with a condition
//     variable);
//   - rule selection is guarded and atomic: the body's leading tests plus
//     the deletions immediately following them execute as one atomic
//     test-and-consume step, exactly a Petri-net transition firing — this
//     is what makes the shared-resource idiom of Example 3.3
//     (available(A), del.available(A)) race-free;
//   - iso(G) runs G under a global isolation lock, serializing it against
//     every other isolated block;
//   - if every live process is blocked, the run fails with ErrDeadlock;
//   - user-supplied monitors observe the database after every update and
//     can fail the run when an invariant breaks.
//
// The simulator is the "simulation" side of the paper's title examples
// (3.2–3.4); the prover is its declarative twin.
package sim

import (
	"errors"
	"fmt"
	"math/rand"
	"sort"
	"sync"
	"time"

	"repro/internal/ast"
	"repro/internal/db"
	"repro/internal/term"
)

// Errors reported by runs.
var (
	// ErrDeadlock: every live process is blocked on a query and no further
	// database change can unblock them.
	ErrDeadlock = errors.New("sim: deadlock: all processes blocked")
	// ErrTimeout: the run exceeded Options.Timeout.
	ErrTimeout = errors.New("sim: timeout")
	// ErrOpBudget: the run exceeded Options.MaxOps elementary operations.
	ErrOpBudget = errors.New("sim: operation budget exhausted")
	// ErrNoRule: a call had no rule whose guard could ever succeed
	// (unknown predicate).
	ErrNoRule = errors.New("sim: call of undefined predicate")
)

// MonitorFunc observes the database after an update, under the database
// lock. Returning an error fails the run (invariant violation).
type MonitorFunc func(d *db.DB) error

// Options configure a simulation run.
type Options struct {
	// Seed drives the committed-choice randomization (rule order and tuple
	// choice). Runs with the same seed, program, and goal are reproducible
	// up to goroutine scheduling of independent branches.
	Seed int64
	// Shuffle randomizes rule and tuple choice; when false the first
	// matching rule/tuple in deterministic order is taken.
	Shuffle bool
	// Timeout bounds wall-clock run time (0 = 10s).
	Timeout time.Duration
	// MaxOps bounds the number of elementary operations (0 = 10M).
	MaxOps int64
	// Trace records every executed elementary operation.
	Trace bool
	// Monitors run after every update.
	Monitors []MonitorFunc
}

// Event is one executed elementary operation.
type Event struct {
	Seq  int64
	Task int // process id (0 = root)
	Op   string
	Atom string
}

func (e Event) String() string {
	return fmt.Sprintf("[%d p%d] %s %s", e.Seq, e.Task, e.Op, e.Atom)
}

// Result reports a finished run.
type Result struct {
	// Completed is true when the whole goal ran to completion.
	Completed bool
	// Err is the failure cause when Completed is false.
	Err error
	// Final is the database after the run (the simulator's own copy).
	Final *db.DB
	// Events is the operation trace (when Options.Trace).
	Events []Event
	// Ops counts executed elementary operations.
	Ops int64
	// Spawned counts processes created (including the root).
	Spawned int
}

// Sim runs goals of one program.
type Sim struct {
	prog *ast.Program
	opts Options
}

// New returns a simulator for prog.
func New(prog *ast.Program, opts Options) *Sim {
	if opts.Timeout == 0 {
		opts.Timeout = 10 * time.Second
	}
	if opts.MaxOps == 0 {
		opts.MaxOps = 10_000_000
	}
	return &Sim{prog: prog, opts: opts}
}

// run is the shared state of one simulation run.
type run struct {
	s   *Sim
	d   *db.DB
	ren *term.Renamer

	mu      sync.Mutex
	cond    *sync.Cond
	version int64 // bumped on every db change
	live    int   // running processes
	// parked maps a waiting process to the database version it last
	// evaluated its wait predicate against. A run is deadlocked exactly
	// when every live process is parked against the *current* version: all
	// of them have seen the latest database and found their condition
	// false, and nobody is left to change it. Comparing versions avoids
	// the classical race of counting a signaled-but-not-yet-awake waiter
	// as blocked.
	parked map[int]int64
	failed error // first failure; nil-checked under mu
	done   bool  // run finished (success or failure)

	isoMu sync.Mutex // global isolation lock

	ops     int64
	seq     int64
	spawned int
	events  []Event

	rngMu sync.Mutex
	rng   *rand.Rand

	deadline time.Time
}

// Run executes goal against a private clone of d0. d0 itself is never
// modified.
func (s *Sim) Run(goal ast.Goal, d0 *db.DB) *Result {
	goal, err := s.prog.ResolveGoal(goal)
	if err != nil {
		return &Result{Err: err, Final: d0.Clone()}
	}
	r := &run{
		s:        s,
		d:        d0.Clone(),
		ren:      term.NewRenamer(s.prog.VarHigh + 1_000_000),
		rng:      rand.New(rand.NewSource(s.opts.Seed)),
		deadline: time.Now().Add(s.opts.Timeout),
	}
	r.cond = sync.NewCond(&r.mu)
	r.parked = make(map[int]int64)
	r.d.ResetTrail()

	// Watchdog: wake blocked processes when the deadline passes.
	stopWatch := make(chan struct{})
	go func() {
		t := time.NewTimer(s.opts.Timeout)
		defer t.Stop()
		select {
		case <-t.C:
			r.fail(ErrTimeout)
		case <-stopWatch:
		}
	}()

	r.mu.Lock()
	r.live = 1
	r.spawned = 1
	r.mu.Unlock()

	env := term.NewEnv()
	err = r.exec(goal, env, 0, false)

	r.mu.Lock()
	r.done = true
	if err != nil && r.failed == nil {
		r.failed = err
	}
	failure := r.failed
	r.mu.Unlock()
	close(stopWatch)

	res := &Result{
		Completed: failure == nil,
		Err:       failure,
		Final:     r.d,
		Events:    r.events,
		Ops:       r.ops,
		Spawned:   r.spawned,
	}
	return res
}

// fail records the first failure and wakes everyone.
func (r *run) fail(err error) {
	r.mu.Lock()
	if r.failed == nil && !r.done {
		r.failed = err
	}
	r.cond.Broadcast()
	r.mu.Unlock()
}

// failedNow returns the recorded failure, if any (locked).
func (r *run) failedNow() error {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.failed
}

func (r *run) record(task int, op string, atom string) {
	if !r.s.opts.Trace {
		return
	}
	r.seq++
	r.events = append(r.events, Event{Seq: r.seq, Task: task, Op: op, Atom: atom})
}

// spendOp consumes one elementary operation from the budget. Caller holds mu.
func (r *run) spendOp() error {
	r.ops++
	if r.ops > r.s.opts.MaxOps {
		if r.failed == nil {
			r.failed = ErrOpBudget
		}
		r.cond.Broadcast()
		return ErrOpBudget
	}
	return nil
}

// bump publishes a db change. Caller holds mu.
func (r *run) bump() {
	r.version++
	r.cond.Broadcast()
}

// runMonitors runs invariant monitors; caller holds mu.
func (r *run) runMonitors() error {
	for _, m := range r.s.opts.Monitors {
		if err := m(r.d); err != nil {
			if r.failed == nil {
				r.failed = fmt.Errorf("sim: invariant violated: %w", err)
			}
			r.cond.Broadcast()
			return r.failed
		}
	}
	return nil
}

// exec runs goal to completion in the current process. task is the process
// id; inIso marks execution inside an isolation block (isolation lock held
// by an ancestor).
func (r *run) exec(g ast.Goal, env *term.Env, task int, inIso bool) error {
	switch g := g.(type) {
	case ast.True:
		return nil

	case *ast.Seq:
		for _, sub := range g.Goals {
			if err := r.exec(sub, env, task, inIso); err != nil {
				return err
			}
		}
		return nil

	case *ast.Conc:
		return r.execConc(g, env, task, inIso)

	case *ast.Iso:
		if inIso {
			// Already isolated by an ancestor; run inline.
			return r.exec(g.Body, env, task, true)
		}
		r.isoMu.Lock()
		defer r.isoMu.Unlock()
		return r.exec(g.Body, env, task, true)

	case *ast.Builtin:
		r.mu.Lock()
		if err := r.spendOp(); err != nil {
			r.mu.Unlock()
			return err
		}
		ok, err := ast.EvalBuiltin(g, env)
		r.record(task, "builtin", env.ResolveAtom(term.Atom{Pred: g.Name, Args: g.Args}).String())
		r.mu.Unlock()
		if err != nil {
			return fmt.Errorf("sim: %w", err)
		}
		if !ok {
			return fmt.Errorf("sim: builtin %s failed (committed-choice execution cannot backtrack)", g)
		}
		return nil

	case *ast.Empty:
		return r.waitFor(task, func() bool {
			return r.d.IsEmpty(g.Pred)
		}, func() {
			r.record(task, "empty", g.Pred)
		})

	case *ast.Lit:
		switch g.Op {
		case ast.OpIns, ast.OpDel:
			return r.update(g, env, task)
		case ast.OpQuery:
			return r.blockingQuery(g, env, task)
		case ast.OpCall:
			return r.call(g, env, task, inIso)
		}
	}
	return fmt.Errorf("sim: unsupported goal %T", g)
}

// update executes an insertion or deletion atomically.
func (r *run) update(g *ast.Lit, env *term.Env, task int) error {
	atom := env.ResolveAtom(g.Atom)
	if !atom.IsGround() {
		return fmt.Errorf("sim: update %s with unbound variable", g)
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.failed != nil {
		return r.failed
	}
	if err := r.spendOp(); err != nil {
		return err
	}
	if g.Op == ast.OpIns {
		r.d.Insert(atom.Pred, atom.Args)
		r.record(task, "ins", atom.String())
	} else {
		r.d.Delete(atom.Pred, atom.Args)
		r.record(task, "del", atom.String())
	}
	r.d.ResetTrail()
	r.bump()
	return r.runMonitors()
}

// waitFor blocks until pred() holds (evaluated under the lock), the run
// fails, or deadlock/timeout strikes. onOK runs under the lock when pred
// first holds.
func (r *run) waitFor(task int, pred func() bool, onOK func()) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	for {
		if r.failed != nil {
			return r.failed
		}
		if err := r.spendOp(); err != nil {
			return err
		}
		if pred() {
			onOK()
			return r.failed // a monitor may have failed during pred
		}
		if time.Now().After(r.deadline) {
			if r.failed == nil {
				r.failed = ErrTimeout
			}
			r.cond.Broadcast()
			return r.failed
		}
		r.parked[task] = r.version
		if len(r.parked) == r.live && r.allParkedCurrent() {
			delete(r.parked, task)
			if r.failed == nil {
				r.failed = ErrDeadlock
			}
			r.cond.Broadcast()
			return r.failed
		}
		r.cond.Wait()
		delete(r.parked, task)
	}
}

// allParkedCurrent reports whether every parked process last evaluated its
// condition against the current database version. Caller holds mu.
func (r *run) allParkedCurrent() bool {
	for _, v := range r.parked {
		if v != r.version {
			return false
		}
	}
	return true
}

// blockingQuery matches g against the database, committing to one matching
// tuple (random under Shuffle); with no match it blocks until the database
// changes.
func (r *run) blockingQuery(g *ast.Lit, env *term.Env, task int) error {
	return r.waitFor(task, func() bool {
		return r.tryMatch(g.Atom, env)
	}, func() {
		r.record(task, "query", env.ResolveAtom(g.Atom).String())
	})
}

// tryMatch attempts to unify g against some stored tuple, committing the
// binding. Caller holds mu.
func (r *run) tryMatch(a term.Atom, env *term.Env) bool {
	var rows [][]term.Term
	r.d.Scan(a.Pred, a.Args, env, func() bool {
		rows = append(rows, env.ResolveArgs(a.Args))
		return true
	})
	if len(rows) == 0 {
		return false
	}
	pick := 0
	if r.s.opts.Shuffle && len(rows) > 1 {
		r.rngMu.Lock()
		pick = r.rng.Intn(len(rows))
		r.rngMu.Unlock()
	}
	return env.UnifyArgs(a.Args, rows[pick])
}

// call performs committed-choice rule selection: the body's guard (leading
// queries, builtins, emptiness tests, and the deletions that immediately
// follow them) executes atomically; with no fireable rule the process
// blocks until the database changes.
func (r *run) call(g *ast.Lit, env *term.Env, task int, inIso bool) error {
	rules := r.s.prog.RulesFor(g.Atom.Pred, len(g.Atom.Args))
	if len(rules) == 0 {
		return fmt.Errorf("%w: %s/%d", ErrNoRule, g.Atom.Pred, len(g.Atom.Args))
	}
	var rest ast.Goal
	var renv *term.Env
	var chosenHead term.Atom
	err := r.waitFor(task, func() bool {
		order := make([]int, len(rules))
		for i := range order {
			order[i] = i
		}
		if r.s.opts.Shuffle {
			r.rngMu.Lock()
			r.rng.Shuffle(len(order), func(i, j int) { order[i], order[j] = order[j], order[i] })
			r.rngMu.Unlock()
		}
		for _, ri := range order {
			rule := rules[ri]
			rn := r.ren.NewRenaming()
			head := rn.Atom(rule.Head)
			body := ast.Rename(rule.Body, rn)
			tryEnv := term.NewEnv()
			// Bind head against the (resolved) call.
			call := env.ResolveAtom(g.Atom)
			if !tryEnv.UnifyAtoms(head, call) {
				continue
			}
			guard, tail := splitGuard(body)
			dbMark := r.d.Mark()
			if r.fireGuard(guard, tryEnv) {
				r.d.ResetTrail()
				rest = tail
				renv = tryEnv
				chosenHead = head
				r.record(task, "call", tryEnv.ResolveAtom(head).String())
				r.bump() // guard may have consumed tuples
				r.runMonitors()
				return true
			}
			r.d.Undo(dbMark)
		}
		return false
	}, func() {})
	if err != nil {
		return err
	}
	if err := r.exec(rest, renv, task, inIso); err != nil {
		return err
	}
	// Export the rule's bindings to the caller: the call's arguments are the
	// only variables shared across the call boundary, and they can only have
	// become more bound (by the guard or by the body).
	for i := range g.Atom.Args {
		if !env.Unify(g.Atom.Args[i], renv.Walk(chosenHead.Args[i])) {
			return fmt.Errorf("sim: output binding conflict at %s", env.ResolveAtom(g.Atom))
		}
	}
	return nil
}

// splitGuard splits a rule body into its atomic guard — the maximal leading
// sequence of queries, builtins, emptiness tests, and then deletions — and
// the remaining goal. Insertions, calls, concurrency, and isolation end the
// guard.
func splitGuard(body ast.Goal) (guard []ast.Goal, tail ast.Goal) {
	seq, ok := body.(*ast.Seq)
	if !ok {
		if isGuardLit(body, false) {
			return []ast.Goal{body}, ast.True{}
		}
		return nil, body
	}
	i := 0
	delsSeen := false
	for i < len(seq.Goals) {
		g := seq.Goals[i]
		if !isGuardLit(g, delsSeen) {
			break
		}
		if l, isLit := g.(*ast.Lit); isLit && l.Op == ast.OpDel {
			delsSeen = true
		}
		guard = append(guard, g)
		i++
	}
	return guard, ast.NewSeq(seq.Goals[i:]...)
}

// isGuardLit reports whether g may be part of a guard. After the first
// deletion only further deletions are allowed (test-and-consume shape).
func isGuardLit(g ast.Goal, delsSeen bool) bool {
	switch g := g.(type) {
	case *ast.Builtin, *ast.Empty:
		return !delsSeen
	case *ast.Lit:
		switch g.Op {
		case ast.OpQuery:
			return !delsSeen
		case ast.OpDel:
			return true
		}
	}
	return false
}

// fireGuard atomically evaluates a guard under the lock: queries must
// match (committing bindings), builtins must hold, deletions must remove a
// present tuple. Returns false (leaving bindings partially made but the
// database restored by the caller) when any element fails. Caller holds mu.
func (r *run) fireGuard(guard []ast.Goal, env *term.Env) bool {
	for _, g := range guard {
		switch g := g.(type) {
		case *ast.Lit:
			switch g.Op {
			case ast.OpQuery:
				if !r.tryMatch(g.Atom, env) {
					return false
				}
			case ast.OpDel:
				atom := env.ResolveAtom(g.Atom)
				if !atom.IsGround() {
					return false
				}
				// Within a guard, deleting an absent tuple fails the guard:
				// the deletion is a consumption, as in a Petri-net firing.
				if !r.d.Delete(atom.Pred, atom.Args) {
					return false
				}
			}
		case *ast.Builtin:
			ok, err := ast.EvalBuiltin(g, env)
			if err != nil || !ok {
				return false
			}
		case *ast.Empty:
			if !r.d.IsEmpty(g.Pred) {
				return false
			}
		}
	}
	return true
}

// execConc runs each branch in its own goroutine. Branch goals must not
// share unbound variables (the committed simulator cannot coordinate
// bindings across processes); sharing ground terms is of course fine.
func (r *run) execConc(c *ast.Conc, env *term.Env, task int, inIso bool) error {
	resolved := make([]ast.Goal, len(c.Goals))
	for i, g := range c.Goals {
		resolved[i] = resolveGoal(g, env)
	}
	if v := sharedUnboundVar(resolved); v != "" {
		return fmt.Errorf("sim: concurrent branches share unbound variable %s; bind it before spawning", v)
	}
	var wg sync.WaitGroup
	errs := make([]error, len(resolved))
	ids := make([]int, len(resolved))
	r.mu.Lock()
	for i := range resolved {
		r.spawned++
		ids[i] = r.spawned - 1
	}
	// The parent waits for its branches, so the branches replace it in the
	// liveness count. The LAST branch to finish transfers its liveness back
	// to the parent rather than decrementing — otherwise there is a window
	// where the resumable parent is invisible to the deadlock detector and
	// parked siblings would declare a false deadlock.
	r.live += len(resolved) - 1
	remaining := len(resolved)
	r.mu.Unlock()

	for i := range resolved {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			benv := term.NewEnv()
			errs[i] = r.exec(resolved[i], benv, ids[i], inIso)
			r.mu.Lock()
			remaining--
			if remaining > 0 {
				r.live--
				r.cond.Broadcast()
			}
			r.mu.Unlock()
			if errs[i] != nil {
				r.fail(errs[i])
			}
		}(i)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// resolveGoal substitutes current bindings into g, leaving unbound
// variables in place.
func resolveGoal(g ast.Goal, env *term.Env) ast.Goal {
	switch g := g.(type) {
	case ast.True:
		return g
	case *ast.Lit:
		return &ast.Lit{Op: g.Op, Atom: env.ResolveAtom(g.Atom)}
	case *ast.Empty:
		return g
	case *ast.Builtin:
		return &ast.Builtin{Name: g.Name, Args: env.ResolveArgs(g.Args)}
	case *ast.Seq:
		goals := make([]ast.Goal, len(g.Goals))
		for i, sub := range g.Goals {
			goals[i] = resolveGoal(sub, env)
		}
		return &ast.Seq{Goals: goals}
	case *ast.Conc:
		goals := make([]ast.Goal, len(g.Goals))
		for i, sub := range g.Goals {
			goals[i] = resolveGoal(sub, env)
		}
		return &ast.Conc{Goals: goals}
	case *ast.Iso:
		return &ast.Iso{Body: resolveGoal(g.Body, env)}
	default:
		return g
	}
}

// sharedUnboundVar returns the name of a variable occurring unbound in two
// different branches, or "".
func sharedUnboundVar(branches []ast.Goal) string {
	seen := make(map[int64]int)
	names := make(map[int64]string)
	for i, b := range branches {
		for _, v := range ast.Vars(b, nil) {
			id := v.VarID()
			if prev, ok := seen[id]; ok && prev != i {
				return names[id]
			}
			seen[id] = i
			names[id] = v.VarName()
		}
	}
	return ""
}

// SortedEvents returns events ordered by sequence number (they are recorded
// in order, but this is explicit for readers).
func SortedEvents(evs []Event) []Event {
	out := append([]Event(nil), evs...)
	sort.Slice(out, func(i, j int) bool { return out[i].Seq < out[j].Seq })
	return out
}
