package engine

import (
	"fmt"
	"strings"
	"sync"
	"testing"

	"repro/internal/parser"
	"repro/internal/term"
)

// TestMemoTableHammer runs many sessions concurrently over one shared
// MemoStore, each mutating its own live database replica between proofs.
// Every session checks its tabled answers against a private untabled
// engine on the same replica state, so the hammer catches both data races
// (under -race) and cross-session answer leaks from the shared table.
func TestMemoTableHammer(t *testing.T) {
	const (
		workers = 8
		iters   = 40
	)
	store := NewMemoStore(1)
	goals := []string{"reach(a, Y)", "big(X)", "reach(d, Y)"}

	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		tabled, dt := memoSetup(t, memoProg, &MemoOptions{Mode: "all", Store: store})
		_, dp := memoSetup(t, memoProg, nil)
		plain := NewDefault(tabled.Program())
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				if i%3 == 2 {
					// Diverge this replica from the others: the shared
					// table now holds entries for several distinct
					// support fingerprints at once.
					row := []term.Term{
						term.NewSym(fmt.Sprintf("w%d", w)),
						term.NewSym(fmt.Sprintf("i%d", i)),
					}
					dt.Insert("edge", row)
					dt.ResetTrail()
					dp.Insert("edge", row)
					dp.ResetTrail()
				}
				goal := parser.MustParseGoal(goals[i%len(goals)], 1000)
				st, _, err := tabled.Solutions(goal, dt, 0)
				if err != nil {
					t.Errorf("worker %d iter %d: tabled: %v", w, i, err)
					return
				}
				sp, _, err := plain.Solutions(goal, dp, 0)
				if err != nil {
					t.Errorf("worker %d iter %d: plain: %v", w, i, err)
					return
				}
				a, b := solutionsKey(st), solutionsKey(sp)
				if strings.Join(a, "\n") != strings.Join(b, "\n") {
					t.Errorf("worker %d iter %d goal %s: answers diverged:\n tabled: %v\n plain:  %v",
						w, i, goals[i%len(goals)], a, b)
					return
				}
			}
		}(w)
	}
	wg.Wait()

	snap := store.Snapshot()
	if snap.Hits == 0 {
		t.Errorf("hammer never hit the shared table: %+v", snap)
	}
}
