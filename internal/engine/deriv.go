package engine

import (
	"strconv"
	"sync/atomic"
	"time"

	"repro/internal/ast"
	"repro/internal/db"
	"repro/internal/term"
)

// deriv holds the mutable state of one search.
type deriv struct {
	e   *Engine
	d   *db.DB
	env *term.Env
	ren *term.Renamer
	// prn is the derivation's pooled Renaming, Reset and reused for every
	// candidate clause instead of allocating a fresh map per attempt. Safe
	// because a renaming is consumed entirely (head and body renamed)
	// before the call step recurses.
	prn *term.Renaming
	err error

	steps    int64
	maxDepth int

	// depthLimit, when > 0, prunes paths longer than the limit instead of
	// aborting (iterative deepening); cutoffs counts prunings, so callers
	// (and the tabling guard) can tell whether a deeper iteration could
	// find more.
	depthLimit int
	cutoffs    int64

	// path holds canonical configuration keys along the current derivation
	// path (for the cycle check); failed memoizes exhaustively explored
	// configurations with no reachable success (tabling). Keys are 128-bit
	// hashes of the canonical serialization: the same collision trade the
	// key already made by embedding the database's 128-bit fingerprint, and
	// it keeps the hot path free of string construction.
	path   map[ckey]bool
	failed map[ckey]bool

	tableHits int64
	loopHits  int64

	// unifs counts head-unification attempts in call steps; dispatchHits
	// counts call steps whose candidate set came from the clause index.
	// Plain increments on paths already taken — no extra lookups.
	unifs        int64
	dispatchHits int64
	planHits     int64

	// Memo-table state (Options.Memo; all nil/zero otherwise — the
	// disabled hot path pays one nil check in the call step). memoFlight
	// guards against a recursive tabled predicate re-entering its own
	// fill; memoBuf is key-encoding scratch, safe to reuse because a key
	// is fully consumed (lookup or string copy) before any nested search.
	memoHits    int64
	memoMisses  int64
	memoInvalid int64
	memoFlight  map[string]bool
	memoBuf     []byte

	// concTaint marks that the current descent passed through an
	// un-isolated '|' composition: the literal being stepped interleaves
	// with concurrent siblings, so plan-reordered bodies are not
	// semantics-preserving there (a sibling's update between two reads
	// distinguishes the orders). Every explore receives a whole-tree
	// residual (or an iso body) and restarts the descent from its root,
	// so the flag is cleared on explore entry and re-established by each
	// Conc node passed through; iso bodies start clean — they are atomic
	// and safe to plan inside.
	concTaint bool

	trace []TraceEntry

	// Branch-identity state for span recording, active only when
	// opts.Trace is on (recording()); every field below stays nil/zero on
	// the zero-alloc untraced path.
	//
	// The difficulty: ast.NewConc flattens nested compositions and drops
	// finished branches, so positional indices are unstable across
	// transitions. Instead each live branch of a concurrent composition
	// gets a stable int32 id, carried across rebuilds:
	//
	//   - concIDs memoizes the per-position ids of a Conc node (AST nodes
	//     are immutable, so a pointer identifies a composition state);
	//   - when a transition rebuilds a Conc, noteConcRebuild transfers ids
	//     to the successor node: a branch whose residual stays a single
	//     goal keeps its id, a finished branch's id is dropped, and a
	//     branch that expanded into k concurrent sub-branches gets k fresh
	//     ids recorded as children (parentOf) of the expanding branch;
	//   - when a composition collapses to its last surviving branch, the
	//     survivor goal node is remembered in survivors so later steps of
	//     it still attribute to its branch id.
	//
	// branchStack is the id chain of the current descent; descentBase marks
	// where the current explore's descent began (outer frames keep their
	// entries while a continuation explores the next residual). Because
	// every rebuild maps to the whole-tree residual, branchStack[descentBase:]
	// is the full root-to-branch path of the operation being recorded
	// (relative to the iso body root inside an iso macro-step).
	branchStack []int32
	descentBase int
	nextID      int32
	concIDs     map[*ast.Conc][]int32
	survivors   map[ast.Goal]int32
	parentOf    map[int32]int32

	// keyBuf and keyVars are scratch space for configKey, reused across
	// calls (the canonicalization is the search's hottest allocation site).
	keyBuf  []byte
	keyVars map[int64]int

	// argBuf is scratch for resolving update arguments when tracing is off
	// (with tracing on, resolved atoms must be owned by the trace).
	argBuf []term.Term

	// Per-predicate profile scratch, active only when opts.Profile is on
	// (all nil/zero otherwise): profMap accumulates calls/fan-out/time per
	// dispatched predicate; profCur/profLast implement the flat time
	// attribution — the interval between consecutive call steps is charged
	// to the predicate of the earlier step. Folded into the engine's
	// cumulative table by profFlush.
	profMap  map[string]*predAccum
	profCur  string
	profLast time.Time

	// shared, when non-nil, is an aggregate step counter for parallel
	// search: the budget is enforced against it rather than local steps.
	shared *atomic.Int64
	// frontier, when non-nil, receives each configuration pruned by the
	// iterative-deepening cutoff — ProvePar's successor collector.
	frontier func(ast.Goal)
}

// newDeriv returns a search state for d, reusing the engine's pooled
// scratch (environment, renaming, tables, buffers) when one is free. The
// pool is checked out atomically, so concurrent derivations (ProvePar
// workers) simply fall back to fresh allocations.
func newDeriv(e *Engine, d *db.DB) *deriv {
	if dv := e.pool.Swap(nil); dv != nil {
		e.poolHits.Add(1)
		dv.reset(d)
		return dv
	}
	e.poolMisses.Add(1)
	dv := &deriv{e: e, d: d, env: term.NewEnv(), ren: term.NewRenamer(e.prog.VarHigh + 1_000_000)}
	dv.prn = dv.ren.NewRenaming()
	if e.opts.LoopCheck {
		dv.path = make(map[ckey]bool)
	}
	if e.opts.Table {
		dv.failed = make(map[ckey]bool)
	}
	return dv
}

// reset rewinds a pooled deriv for a new search against d.
func (dv *deriv) reset(d *db.DB) {
	dv.d = d
	dv.err = nil
	dv.steps = 0
	dv.maxDepth = 0
	dv.depthLimit = 0
	dv.cutoffs = 0
	dv.tableHits = 0
	dv.loopHits = 0
	dv.unifs = 0
	dv.dispatchHits = 0
	dv.planHits = 0
	dv.memoHits = 0
	dv.memoMisses = 0
	dv.memoInvalid = 0
	if dv.memoFlight != nil {
		clear(dv.memoFlight)
	}
	dv.concTaint = false
	dv.trace = dv.trace[:0]
	dv.branchStack = dv.branchStack[:0]
	dv.descentBase = 0
	dv.nextID = 0
	if dv.concIDs != nil {
		clear(dv.concIDs)
	}
	if dv.survivors != nil {
		clear(dv.survivors)
	}
	if dv.parentOf != nil {
		clear(dv.parentOf)
	}
	if dv.profMap != nil {
		clear(dv.profMap)
	}
	dv.profCur = ""
	dv.profLast = time.Time{}
	dv.shared = nil
	dv.frontier = nil
	dv.env.Reset()
	dv.prn.Reset()
	if dv.path != nil {
		clear(dv.path)
	}
	if dv.failed != nil {
		clear(dv.failed)
	}
}

// release returns the deriv to the engine's pool. Callers must be done
// with every reference into it (env, trace) before releasing.
func (dv *deriv) release() {
	dv.d = nil
	dv.e.pool.Store(dv)
}

func (dv *deriv) stats() Stats {
	if dv.e.opts.Profile {
		// stats is the single point every Prove-family entry point reads
		// exactly once per search (ProveDelta and Enumerate never release
		// their deriv, so release cannot be the flush site).
		dv.profFlush()
	}
	return Stats{
		Steps:        dv.steps,
		MaxDepth:     dv.maxDepth,
		TableHits:    dv.tableHits,
		LoopHits:     dv.loopHits,
		TableSize:    len(dv.failed),
		Unifications: dv.unifs,
		DispatchHits: dv.dispatchHits,
		PlanHits:     dv.planHits,

		MemoHits:          dv.memoHits,
		MemoMisses:        dv.memoMisses,
		MemoInvalidations: dv.memoInvalid,
	}
}

// recording reports whether span/branch identity bookkeeping is active.
func (dv *deriv) recording() bool { return dv.e.opts.Trace }

// predAccum is the per-predicate profile cell: call steps, dispatch
// fan-out, and flat-attributed wall time.
type predAccum struct {
	calls  int64
	fanout int64
	dur    time.Duration
}

// noteCall records one call step on pred with the given candidate-rule
// fan-out, charging the interval since the previous call step to the
// previously dispatched predicate. One time.Now per call step; only
// reached when opts.Profile is on.
func (dv *deriv) noteCall(pred string, fanout int) {
	now := time.Now()
	if dv.profMap == nil {
		dv.profMap = make(map[string]*predAccum)
	}
	pa := dv.profMap[pred]
	if pa == nil {
		pa = &predAccum{}
		dv.profMap[pred] = pa
	}
	pa.calls++
	pa.fanout += int64(fanout)
	if dv.profCur != "" {
		if cur := dv.profMap[dv.profCur]; cur != nil {
			cur.dur += now.Sub(dv.profLast)
		}
	}
	dv.profCur = pred
	dv.profLast = now
}

// profFlush charges the tail interval to the last dispatched predicate and
// folds the search-local table into the engine's cumulative profile.
// Idempotent: a second call on the same search finds an empty table.
func (dv *deriv) profFlush() {
	if dv.profCur != "" {
		if cur := dv.profMap[dv.profCur]; cur != nil {
			cur.dur += time.Since(dv.profLast)
		}
		dv.profCur = ""
	}
	if len(dv.profMap) == 0 {
		return
	}
	e := dv.e
	e.profMu.Lock()
	if e.prof == nil {
		e.prof = make(map[string]*predAccum)
	}
	for pred, pa := range dv.profMap {
		cum := e.prof[pred]
		if cum == nil {
			cum = &predAccum{}
			e.prof[pred] = cum
		}
		cum.calls += pa.calls
		cum.fanout += pa.fanout
		cum.dur += pa.dur
	}
	e.profMu.Unlock()
	clear(dv.profMap)
}

// explore runs the whole process tree g to completion, invoking emit at
// every distinct successful execution with the database and environment
// reflecting that execution. It returns false iff emit stopped the search
// (in which case the current state is preserved); otherwise the state is
// fully rolled back and true is returned.
func (dv *deriv) explore(g ast.Goal, depth int, emit func() bool) bool {
	if dv.err != nil {
		return false
	}
	// Fresh descent from the residual's root: any '|' context above a
	// literal will be re-entered (and re-taint) on the way down.
	dv.concTaint = false
	if dv.recording() {
		// Every explore receives a whole-tree residual (or an iso body),
		// so its descent restarts from the root: record branch ids pushed
		// below this point only. Outer frames' entries stay on the stack
		// and are restored when this explore returns.
		saved := dv.descentBase
		dv.descentBase = len(dv.branchStack)
		defer func() { dv.descentBase = saved }()
	}
	if depth > dv.maxDepth {
		dv.maxDepth = depth
	}
	if dv.depthLimit > 0 && depth > dv.depthLimit {
		// Iterative-deepening cutoff: prune this path; a deeper iteration
		// will revisit it. Not a failure for tabling purposes.
		dv.cutoffs++
		if dv.frontier != nil {
			dv.frontier(g)
		}
		return true
	}
	if depth > dv.e.opts.MaxDepth {
		dv.err = ErrDepth
		return false
	}
	if _, done := g.(ast.True); done {
		return emit()
	}

	var key ckey
	usingKey := dv.path != nil || dv.failed != nil
	if usingKey {
		key = dv.configKey(g)
		if dv.failed != nil && dv.failed[key] {
			dv.tableHits++
			return true
		}
		if dv.path != nil {
			if dv.path[key] {
				dv.loopHits++
				return true
			}
			dv.path[key] = true
			defer delete(dv.path, key)
		}
	}

	emitted := false
	wrapped := func() bool {
		emitted = true
		// This configuration's completion subproblem is RESOLVED at the
		// moment the continuation runs: remove its key from the path so a
		// later, independent occurrence of the same configuration (e.g.
		// the body of a second identical iso block) is not mistaken for a
		// cycle. Re-add it afterwards — backtracking resumes underneath.
		if dv.path != nil {
			delete(dv.path, key)
		}
		r := emit()
		if dv.path != nil {
			dv.path[key] = true
		}
		return r
	}
	cutBefore := dv.cutoffs
	cont := dv.step(g, func(res ast.Goal) ast.Goal { return res }, depth, wrapped)
	// Memoize failure only for subtrees explored exhaustively: no success
	// below, no error, and no iterative-deepening cutoff (a deeper
	// iteration could still succeed from this configuration).
	if cont && !emitted && dv.failed != nil && dv.err == nil && dv.cutoffs == cutBefore {
		dv.failed[key] = true
	}
	return cont
}

// step enumerates the single-step successors of subgoal g. rebuild maps the
// residual of g to the whole-tree residual; k explores each successor.
// Like explore, step returns false iff the search was cut, preserving state.
func (dv *deriv) step(g ast.Goal, rebuild func(ast.Goal) ast.Goal, depth int, emit func() bool) bool {
	if dv.err != nil {
		return false
	}
	if dv.recording() && dv.survivors != nil {
		if id, ok := dv.survivors[g]; ok {
			// g is the last surviving branch of a collapsed concurrent
			// composition: its operations still belong to branch id. Keep
			// the chain alive by tagging whatever residual it rebuilds to.
			inner := rebuild
			rebuild = func(res ast.Goal) ast.Goal {
				dv.noteSurvivor(res, id)
				return inner(res)
			}
			// Both a tagged Seq and its (also tagged) elements pass through
			// here when the Seq is stepped in place; push the id once.
			// Only entries above the current descent base count — an equal
			// id below it belongs to an enclosing explore and is invisible
			// to this descent's path extraction.
			if n := len(dv.branchStack); n <= dv.descentBase || dv.branchStack[n-1] != id {
				dv.branchStack = append(dv.branchStack, id)
				defer func() { dv.branchStack = dv.branchStack[:len(dv.branchStack)-1] }()
			}
		}
	}
	switch g := g.(type) {
	case ast.True:
		return true // no transitions out of a finished component

	case *ast.Lit:
		return dv.stepLit(g, rebuild, depth, emit)

	case *ast.Empty:
		if !dv.budget() {
			return false
		}
		if !dv.d.IsEmpty(g.Pred) {
			return true
		}
		dv.pushTrace(TraceEntry{Op: TraceEmpty, Atom: term.Atom{Pred: g.Pred}})
		cont := dv.explore(rebuild(ast.True{}), depth+1, emit)
		dv.popTrace(cont)
		return cont

	case *ast.Builtin:
		if !dv.budget() {
			return false
		}
		envMark := dv.env.Mark()
		ok, err := ast.EvalBuiltin(g, dv.env)
		if err != nil {
			dv.err = &RuntimeError{Goal: g.String(), Msg: err.Error()}
			return false
		}
		if !ok {
			dv.env.Undo(envMark)
			return true
		}
		dv.pushTrace(TraceEntry{Op: TraceBuiltin, Atom: dv.env.ResolveAtom(term.Atom{Pred: g.Name, Args: g.Args})})
		cont := dv.explore(rebuild(ast.True{}), depth+1, emit)
		dv.popTrace(cont)
		if cont {
			dv.env.Undo(envMark)
		}
		return cont

	case *ast.Seq:
		rest := g.Goals[1:]
		return dv.step(g.Goals[0], func(res ast.Goal) ast.Goal {
			goals := make([]ast.Goal, 0, len(rest)+1)
			goals = append(goals, res)
			goals = append(goals, rest...)
			return rebuild(ast.NewSeq(goals...))
		}, depth, emit)

	case *ast.Conc:
		ids := dv.concBranchIDs(g) // nil when not recording
		for i := range g.Goals {
			i := i
			if ids != nil {
				dv.branchStack = append(dv.branchStack, ids[i])
			}
			// Children of an un-isolated '|' interleave with their
			// siblings: planned dispatch is off below this point (the
			// next explore starts a fresh descent and clears the taint).
			dv.concTaint = true
			cont := dv.step(g.Goals[i], func(res ast.Goal) ast.Goal {
				goals := make([]ast.Goal, len(g.Goals))
				copy(goals, g.Goals)
				goals[i] = res
				ng := ast.NewConc(goals...)
				if ids != nil {
					dv.noteConcRebuild(g, ids, i, res, ng)
				}
				return rebuild(ng)
			}, depth, emit)
			if ids != nil {
				dv.branchStack = dv.branchStack[:len(dv.branchStack)-1]
			}
			if !cont {
				return false
			}
		}
		return true

	case *ast.Iso:
		// Isolation: run the body to completion as one macro-step. Every
		// complete execution of the body is one alternative for the step.
		if !dv.budget() {
			return false
		}
		if dv.frontier != nil {
			// Successor-collector mode (ProvePar): the body is ONE step, so
			// it runs without the depth limit; only the post-iso residual is
			// a frontier configuration.
			savedLimit := dv.depthLimit
			dv.depthLimit = 0
			cont := dv.explore(g.Body, depth+1, func() bool {
				dv.depthLimit = savedLimit
				r := dv.explore(rebuild(ast.True{}), depth+1, emit)
				dv.depthLimit = 0
				return r
			})
			dv.depthLimit = savedLimit
			return cont
		}
		dv.pushTrace(TraceEntry{Op: TraceIsoBegin})
		cont := dv.explore(g.Body, depth+1, func() bool {
			dv.pushTrace(TraceEntry{Op: TraceIsoEnd})
			r := dv.explore(rebuild(ast.True{}), depth+1, emit)
			dv.popTrace(r)
			return r
		})
		dv.popTrace(cont)
		return cont

	default:
		dv.err = &RuntimeError{Goal: g.String(), Msg: "unknown goal node"}
		return false
	}
}

// stepLit handles the atom-bearing goals: queries, updates, and calls.
func (dv *deriv) stepLit(g *ast.Lit, rebuild func(ast.Goal) ast.Goal, depth int, emit func() bool) bool {
	switch g.Op {
	case ast.OpQuery:
		if !dv.budget() {
			return false
		}
		return dv.d.Scan(g.Atom.Pred, g.Atom.Args, dv.env, func() bool {
			dv.pushTrace(TraceEntry{Op: TraceQuery, Atom: dv.env.ResolveAtom(g.Atom)})
			cont := dv.explore(rebuild(ast.True{}), depth+1, emit)
			dv.popTrace(cont)
			return cont
		})

	case ast.OpIns, ast.OpDel:
		if !dv.budget() {
			return false
		}
		// Resolve the update's arguments. With tracing off they land in a
		// reused scratch slice (the database copies them on store); with
		// tracing on the trace entry must own them, so allocate.
		var args []term.Term
		if dv.e.opts.Trace {
			args = dv.env.ResolveArgs(g.Atom.Args)
		} else {
			dv.argBuf = dv.argBuf[:0]
			for _, t := range g.Atom.Args {
				dv.argBuf = append(dv.argBuf, dv.env.Walk(t))
			}
			args = dv.argBuf
		}
		for _, t := range args {
			if t.IsVar() {
				dv.err = &RuntimeError{Goal: g.String(), Msg: "update with unbound variable (unsafe program)"}
				return false
			}
		}
		dbMark := dv.d.Mark()
		var op TraceOp
		if g.Op == ast.OpIns {
			dv.d.Insert(g.Atom.Pred, args)
			op = TraceIns
		} else {
			dv.d.Delete(g.Atom.Pred, args)
			op = TraceDel
		}
		dv.pushTrace(TraceEntry{Op: op, Atom: term.Atom{Pred: g.Atom.Pred, Args: args}})
		if w := dv.e.opts.Watch; w != nil {
			if werr := w(dv.d); werr != nil {
				dv.err = &WatchViolation{Cause: werr, Trace: append([]TraceEntry(nil), dv.trace...)}
				return false
			}
		}
		cont := dv.explore(rebuild(ast.True{}), depth+1, emit)
		dv.popTrace(cont)
		if cont {
			dv.d.Undo(dbMark)
		}
		return cont

	case ast.OpCall:
		// Tabled dispatch: a call to a memoized predicate replays the
		// cached answer multiset. Bypassed under un-isolated '|' (a
		// sibling's update between replayed answers would be invisible),
		// under iterative deepening (a cutoff makes the fill
		// non-exhaustive), and under parallel search (shared budget /
		// frontier collection); a re-entrant same-key call mid-fill falls
		// through to the ordinary path below.
		if dv.e.memo != nil && !dv.concTaint && dv.depthLimit == 0 && dv.shared == nil && dv.frontier == nil {
			if handled, cont := dv.memoStep(g, rebuild, depth, emit); handled {
				return cont
			}
		}
		// First-argument dispatch: only rules whose head can unify with the
		// call's (walked) first argument are attempted. The linear fallback
		// tries every rule; both enumerate candidates in source order.
		var rules []ast.Rule
		if dv.e.opts.NoClauseIndex {
			rules = dv.e.prog.RulesFor(g.Atom.Pred, len(g.Atom.Args))
		} else {
			dv.dispatchHits++
			planned := false
			if dv.e.plan != nil && !dv.concTaint {
				// Planned dispatch: an exact hit on the call's runtime
				// adornment serves the reordered bodies. Misses (and any
				// call under an un-isolated '|') keep textual order.
				if pr, ok := dv.e.plan.plannedRules(g.Atom.Pred, g.Atom.Args, dv.env); ok {
					rules = pr
					planned = true
					dv.planHits++
				}
			}
			if !planned {
				rules = dv.e.idx.candidates(g.Atom.Pred, g.Atom.Args, dv.env)
			}
		}
		if dv.e.opts.Profile {
			dv.noteCall(g.Atom.Pred, len(rules))
		}
		if len(rules) == 0 {
			// Unknown predicate: no rules and not a base relation — treat as
			// a query against an empty relation (fails), matching Datalog
			// convention.
			return true
		}
		for _, r := range rules {
			if !dv.budget() {
				return false
			}
			rn := dv.prn
			rn.Reset()
			head := rn.Atom(r.Head)
			envMark := dv.env.Mark()
			dv.unifs++
			if !dv.env.UnifyAtoms(head, g.Atom) {
				dv.env.Undo(envMark)
				continue
			}
			body := ast.Rename(r.Body, rn)
			dv.pushTrace(TraceEntry{Op: TraceCall, Atom: dv.env.ResolveAtom(g.Atom)})
			cont := dv.explore(rebuild(body), depth+1, emit)
			dv.popTrace(cont)
			if !cont {
				return false
			}
			dv.env.Undo(envMark)
		}
		return true
	}
	dv.err = &RuntimeError{Goal: g.String(), Msg: "unexpected literal op"}
	return false
}

// budget consumes one step from the budget; false means the search must
// abort (dv.err set). Under parallel search the budget is the shared
// aggregate across workers.
func (dv *deriv) budget() bool {
	dv.steps++
	if dv.shared != nil {
		if dv.shared.Add(1) > dv.e.opts.MaxSteps {
			dv.err = ErrBudget
			return false
		}
		return true
	}
	if dv.steps > dv.e.opts.MaxSteps {
		dv.err = ErrBudget
		return false
	}
	return true
}

func (dv *deriv) pushTrace(t TraceEntry) {
	if dv.e.opts.Trace {
		if n := len(dv.branchStack) - dv.descentBase; n > 0 {
			t.Path = append([]int32(nil), dv.branchStack[dv.descentBase:]...)
		}
		t.Steps = dv.steps
		dv.trace = append(dv.trace, t)
	}
}

// popTrace removes the last trace entry when the branch is being undone
// (cont == true means we are backtracking past it).
func (dv *deriv) popTrace(cont bool) {
	if dv.e.opts.Trace && cont {
		dv.trace = dv.trace[:len(dv.trace)-1]
	}
}

// concBranchIDs returns the stable branch ids for g's positions, assigning
// fresh ids on first visit. Returns nil when span recording is off.
func (dv *deriv) concBranchIDs(g *ast.Conc) []int32 {
	if !dv.recording() {
		return nil
	}
	if dv.concIDs == nil {
		dv.concIDs = make(map[*ast.Conc][]int32)
		dv.survivors = make(map[ast.Goal]int32)
		dv.parentOf = make(map[int32]int32)
	}
	if ids, ok := dv.concIDs[g]; ok {
		return ids
	}
	ids := make([]int32, len(g.Goals))
	for i := range ids {
		ids[i] = dv.newBranchID()
	}
	dv.concIDs[g] = ids
	return ids
}

func (dv *deriv) newBranchID() int32 {
	dv.nextID++
	return dv.nextID
}

// noteSurvivor tags res (the residual a surviving branch stepped to) with
// the branch's id, unless the branch just finished. A Seq residual's
// elements are tagged as well: an enclosing sequential rebuild flattens
// them into the parent sequence (ast.NewSeq), dissolving the Seq node
// itself, and the chain must survive that.
func (dv *deriv) noteSurvivor(res ast.Goal, id int32) {
	if _, done := res.(ast.True); done {
		return
	}
	dv.survivors[res] = id
	if seq, ok := res.(*ast.Seq); ok {
		for _, sub := range seq.Goals {
			if _, done := sub.(ast.True); !done {
				dv.survivors[sub] = id
			}
		}
	}
}

// noteConcRebuild transfers branch identity from Conc node g (whose
// position i stepped to residual res) to the rebuilt composition ng.
// ast.NewConc may have dropped a finished branch, flattened an expansion
// of branch i into several sub-branches, or collapsed the whole
// composition to its last surviving goal.
func (dv *deriv) noteConcRebuild(g *ast.Conc, ids []int32, i int, res, ng ast.Goal) {
	switch ng := ng.(type) {
	case *ast.Conc:
		if _, ok := dv.concIDs[ng]; ok {
			return // revisited rebuild of a node already mapped
		}
		// res contributed k goals at position i; siblings are carried over
		// verbatim around it.
		k := len(ng.Goals) - (len(g.Goals) - 1)
		nids := make([]int32, 0, len(ng.Goals))
		nids = append(nids, ids[:i]...)
		switch {
		case k == 1:
			nids = append(nids, ids[i]) // branch continues under its id
		case k > 1:
			// Branch i expanded into k concurrent sub-branches (a call
			// whose body is a concurrent composition, flattened into the
			// parent): fresh ids, nested under the expanding branch.
			for j := 0; j < k; j++ {
				id := dv.newBranchID()
				dv.parentOf[id] = ids[i]
				nids = append(nids, id)
			}
		}
		// k == 0: branch finished; its id is dropped.
		nids = append(nids, ids[i+1:]...)
		dv.concIDs[ng] = nids
	case ast.True:
		// Whole composition finished; nothing left to attribute.
	default:
		// Collapsed to a single goal: either the untouched last sibling
		// (res finished) or, defensively, the stepped branch's residual.
		for j, sub := range g.Goals {
			if j != i && sub == ng {
				dv.noteSurvivor(ng, ids[j])
				return
			}
		}
		dv.noteSurvivor(ng, ids[i])
	}
}

// ckey is a 128-bit configuration key: two independent FNV-1a streams over
// the canonical serialization of (goal, database fingerprint).
type ckey [2]uint64

// configKey canonicalizes the configuration (g under the current env, plus
// the database fingerprint) and hashes it. Free variables are numbered by
// first occurrence, so α-equivalent configurations share keys; branches of
// a concurrent composition are sorted, exploiting commutativity of | to
// merge symmetric states. The scratch buffer and numbering map are reused
// across calls, and the key is a fixed-size hash rather than a retained
// string — the canonicalization used to be the search's hottest allocation
// site and now allocates nothing in steady state.
func (dv *deriv) configKey(g ast.Goal) ckey {
	buf := dv.keyBuf[:0]
	if dv.keyVars == nil {
		dv.keyVars = make(map[int64]int, 16)
	} else {
		clear(dv.keyVars)
	}
	buf = dv.writeCanon(buf, g, dv.keyVars)
	dv.keyBuf = buf
	// Two streams with distinct multipliers so they stay independent.
	const primeLo, primeHi = 1099511628211, 0xff51afd7ed558ccd
	lo := uint64(14695981039346656037)
	hi := uint64(0x9e3779b97f4a7c15)
	for _, b := range buf {
		lo = (lo ^ uint64(b)) * primeLo
		hi = (hi ^ uint64(b)) * primeHi
	}
	fp := dv.d.Fingerprint()
	lo = (lo ^ fp[0]) * primeLo
	hi = (hi ^ fp[1]) * primeHi
	return ckey{lo, hi}
}

func (dv *deriv) writeCanon(buf []byte, g ast.Goal, vars map[int64]int) []byte {
	switch g := g.(type) {
	case ast.True:
		buf = append(buf, 'T')
	case *ast.Lit:
		switch g.Op {
		case ast.OpQuery:
			buf = append(buf, 'q', ':')
		case ast.OpIns:
			buf = append(buf, 'i', ':')
		case ast.OpDel:
			buf = append(buf, 'd', ':')
		default:
			buf = append(buf, 'c', ':')
		}
		buf = dv.writeCanonAtom(buf, g.Atom, vars)
	case *ast.Empty:
		buf = append(buf, 'e', ':')
		buf = append(buf, g.Pred...)
	case *ast.Builtin:
		buf = append(buf, 'b', ':')
		buf = dv.writeCanonAtom(buf, term.Atom{Pred: g.Name, Args: g.Args}, vars)
	case *ast.Seq:
		buf = append(buf, 'S', '(')
		for i, sub := range g.Goals {
			if i > 0 {
				buf = append(buf, ';')
			}
			buf = dv.writeCanon(buf, sub, vars)
		}
		buf = append(buf, ')')
	case *ast.Conc:
		// Sort branch serializations: | is commutative. Branch-local
		// variable numbering would break cross-branch sharing, so branches
		// are serialized with the shared numbering first, then sorted.
		parts := make([]string, len(g.Goals))
		for i, sub := range g.Goals {
			parts[i] = string(dv.writeCanon(nil, sub, vars))
		}
		sortStrings(parts)
		buf = append(buf, 'C', '(')
		for i, p := range parts {
			if i > 0 {
				buf = append(buf, '&')
			}
			buf = append(buf, p...)
		}
		buf = append(buf, ')')
	case *ast.Iso:
		buf = append(buf, 'I', '(')
		buf = dv.writeCanon(buf, g.Body, vars)
		buf = append(buf, ')')
	}
	return buf
}

func (dv *deriv) writeCanonAtom(buf []byte, a term.Atom, vars map[int64]int) []byte {
	buf = append(buf, a.Pred...)
	buf = append(buf, '(')
	for i, t := range a.Args {
		if i > 0 {
			buf = append(buf, ',')
		}
		w := dv.env.Walk(t)
		if w.IsVar() {
			n, ok := vars[w.VarID()]
			if !ok {
				n = len(vars)
				vars[w.VarID()] = n
			}
			buf = append(buf, '_')
			buf = strconv.AppendInt(buf, int64(n), 10)
		} else {
			switch w.Kind() {
			case term.Sym:
				// Length-prefixed: API-constructed symbol names may contain
				// arbitrary bytes, and must never collide with key
				// structure characters.
				name := w.SymName()
				buf = append(buf, 's')
				buf = strconv.AppendInt(buf, int64(len(name)), 10)
				buf = append(buf, ':')
				buf = append(buf, name...)
			case term.Int:
				buf = append(buf, 'n')
				buf = strconv.AppendInt(buf, w.IntVal(), 10)
			case term.Str:
				buf = append(buf, 'x')
				buf = strconv.AppendQuote(buf, w.StrVal())
			default:
				buf = append(buf, w.String()...)
			}
		}
	}
	buf = append(buf, ')')
	return buf
}

func sortStrings(ss []string) {
	// Insertion sort: branch counts are small, avoids pulling in sort for a
	// hot path with tiny inputs.
	for i := 1; i < len(ss); i++ {
		for j := i; j > 0 && ss[j] < ss[j-1]; j-- {
			ss[j], ss[j-1] = ss[j-1], ss[j]
		}
	}
}
