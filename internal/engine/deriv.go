package engine

import (
	"strconv"
	"sync/atomic"

	"repro/internal/ast"
	"repro/internal/db"
	"repro/internal/term"
)

// deriv holds the mutable state of one search.
type deriv struct {
	e   *Engine
	d   *db.DB
	env *term.Env
	ren *term.Renamer
	// prn is the derivation's pooled Renaming, Reset and reused for every
	// candidate clause instead of allocating a fresh map per attempt. Safe
	// because a renaming is consumed entirely (head and body renamed)
	// before the call step recurses.
	prn *term.Renaming
	err error

	steps    int64
	maxDepth int

	// depthLimit, when > 0, prunes paths longer than the limit instead of
	// aborting (iterative deepening); cutoffs counts prunings, so callers
	// (and the tabling guard) can tell whether a deeper iteration could
	// find more.
	depthLimit int
	cutoffs    int64

	// path holds canonical configuration keys along the current derivation
	// path (for the cycle check); failed memoizes exhaustively explored
	// configurations with no reachable success (tabling). Keys are 128-bit
	// hashes of the canonical serialization: the same collision trade the
	// key already made by embedding the database's 128-bit fingerprint, and
	// it keeps the hot path free of string construction.
	path   map[ckey]bool
	failed map[ckey]bool

	tableHits int64
	loopHits  int64

	trace []TraceEntry

	// keyBuf and keyVars are scratch space for configKey, reused across
	// calls (the canonicalization is the search's hottest allocation site).
	keyBuf  []byte
	keyVars map[int64]int

	// argBuf is scratch for resolving update arguments when tracing is off
	// (with tracing on, resolved atoms must be owned by the trace).
	argBuf []term.Term

	// shared, when non-nil, is an aggregate step counter for parallel
	// search: the budget is enforced against it rather than local steps.
	shared *atomic.Int64
	// frontier, when non-nil, receives each configuration pruned by the
	// iterative-deepening cutoff — ProvePar's successor collector.
	frontier func(ast.Goal)
}

// newDeriv returns a search state for d, reusing the engine's pooled
// scratch (environment, renaming, tables, buffers) when one is free. The
// pool is checked out atomically, so concurrent derivations (ProvePar
// workers) simply fall back to fresh allocations.
func newDeriv(e *Engine, d *db.DB) *deriv {
	if dv := e.pool.Swap(nil); dv != nil {
		dv.reset(d)
		return dv
	}
	dv := &deriv{e: e, d: d, env: term.NewEnv(), ren: term.NewRenamer(e.prog.VarHigh + 1_000_000)}
	dv.prn = dv.ren.NewRenaming()
	if e.opts.LoopCheck {
		dv.path = make(map[ckey]bool)
	}
	if e.opts.Table {
		dv.failed = make(map[ckey]bool)
	}
	return dv
}

// reset rewinds a pooled deriv for a new search against d.
func (dv *deriv) reset(d *db.DB) {
	dv.d = d
	dv.err = nil
	dv.steps = 0
	dv.maxDepth = 0
	dv.depthLimit = 0
	dv.cutoffs = 0
	dv.tableHits = 0
	dv.loopHits = 0
	dv.trace = dv.trace[:0]
	dv.shared = nil
	dv.frontier = nil
	dv.env.Reset()
	dv.prn.Reset()
	if dv.path != nil {
		clear(dv.path)
	}
	if dv.failed != nil {
		clear(dv.failed)
	}
}

// release returns the deriv to the engine's pool. Callers must be done
// with every reference into it (env, trace) before releasing.
func (dv *deriv) release() {
	dv.d = nil
	dv.e.pool.Store(dv)
}

func (dv *deriv) stats() Stats {
	return Stats{
		Steps:     dv.steps,
		MaxDepth:  dv.maxDepth,
		TableHits: dv.tableHits,
		LoopHits:  dv.loopHits,
		TableSize: len(dv.failed),
	}
}

// explore runs the whole process tree g to completion, invoking emit at
// every distinct successful execution with the database and environment
// reflecting that execution. It returns false iff emit stopped the search
// (in which case the current state is preserved); otherwise the state is
// fully rolled back and true is returned.
func (dv *deriv) explore(g ast.Goal, depth int, emit func() bool) bool {
	if dv.err != nil {
		return false
	}
	if depth > dv.maxDepth {
		dv.maxDepth = depth
	}
	if dv.depthLimit > 0 && depth > dv.depthLimit {
		// Iterative-deepening cutoff: prune this path; a deeper iteration
		// will revisit it. Not a failure for tabling purposes.
		dv.cutoffs++
		if dv.frontier != nil {
			dv.frontier(g)
		}
		return true
	}
	if depth > dv.e.opts.MaxDepth {
		dv.err = ErrDepth
		return false
	}
	if _, done := g.(ast.True); done {
		return emit()
	}

	var key ckey
	usingKey := dv.path != nil || dv.failed != nil
	if usingKey {
		key = dv.configKey(g)
		if dv.failed != nil && dv.failed[key] {
			dv.tableHits++
			return true
		}
		if dv.path != nil {
			if dv.path[key] {
				dv.loopHits++
				return true
			}
			dv.path[key] = true
			defer delete(dv.path, key)
		}
	}

	emitted := false
	wrapped := func() bool {
		emitted = true
		// This configuration's completion subproblem is RESOLVED at the
		// moment the continuation runs: remove its key from the path so a
		// later, independent occurrence of the same configuration (e.g.
		// the body of a second identical iso block) is not mistaken for a
		// cycle. Re-add it afterwards — backtracking resumes underneath.
		if dv.path != nil {
			delete(dv.path, key)
		}
		r := emit()
		if dv.path != nil {
			dv.path[key] = true
		}
		return r
	}
	cutBefore := dv.cutoffs
	cont := dv.step(g, func(res ast.Goal) ast.Goal { return res }, depth, wrapped)
	// Memoize failure only for subtrees explored exhaustively: no success
	// below, no error, and no iterative-deepening cutoff (a deeper
	// iteration could still succeed from this configuration).
	if cont && !emitted && dv.failed != nil && dv.err == nil && dv.cutoffs == cutBefore {
		dv.failed[key] = true
	}
	return cont
}

// step enumerates the single-step successors of subgoal g. rebuild maps the
// residual of g to the whole-tree residual; k explores each successor.
// Like explore, step returns false iff the search was cut, preserving state.
func (dv *deriv) step(g ast.Goal, rebuild func(ast.Goal) ast.Goal, depth int, emit func() bool) bool {
	if dv.err != nil {
		return false
	}
	switch g := g.(type) {
	case ast.True:
		return true // no transitions out of a finished component

	case *ast.Lit:
		return dv.stepLit(g, rebuild, depth, emit)

	case *ast.Empty:
		if !dv.budget() {
			return false
		}
		if !dv.d.IsEmpty(g.Pred) {
			return true
		}
		dv.pushTrace(TraceEntry{Op: TraceEmpty, Atom: term.Atom{Pred: g.Pred}})
		cont := dv.explore(rebuild(ast.True{}), depth+1, emit)
		dv.popTrace(cont)
		return cont

	case *ast.Builtin:
		if !dv.budget() {
			return false
		}
		envMark := dv.env.Mark()
		ok, err := ast.EvalBuiltin(g, dv.env)
		if err != nil {
			dv.err = &RuntimeError{Goal: g.String(), Msg: err.Error()}
			return false
		}
		if !ok {
			dv.env.Undo(envMark)
			return true
		}
		dv.pushTrace(TraceEntry{Op: TraceBuiltin, Atom: dv.env.ResolveAtom(term.Atom{Pred: g.Name, Args: g.Args})})
		cont := dv.explore(rebuild(ast.True{}), depth+1, emit)
		dv.popTrace(cont)
		if cont {
			dv.env.Undo(envMark)
		}
		return cont

	case *ast.Seq:
		rest := g.Goals[1:]
		return dv.step(g.Goals[0], func(res ast.Goal) ast.Goal {
			goals := make([]ast.Goal, 0, len(rest)+1)
			goals = append(goals, res)
			goals = append(goals, rest...)
			return rebuild(ast.NewSeq(goals...))
		}, depth, emit)

	case *ast.Conc:
		for i := range g.Goals {
			i := i
			cont := dv.step(g.Goals[i], func(res ast.Goal) ast.Goal {
				goals := make([]ast.Goal, len(g.Goals))
				copy(goals, g.Goals)
				goals[i] = res
				return rebuild(ast.NewConc(goals...))
			}, depth, emit)
			if !cont {
				return false
			}
		}
		return true

	case *ast.Iso:
		// Isolation: run the body to completion as one macro-step. Every
		// complete execution of the body is one alternative for the step.
		if !dv.budget() {
			return false
		}
		if dv.frontier != nil {
			// Successor-collector mode (ProvePar): the body is ONE step, so
			// it runs without the depth limit; only the post-iso residual is
			// a frontier configuration.
			savedLimit := dv.depthLimit
			dv.depthLimit = 0
			cont := dv.explore(g.Body, depth+1, func() bool {
				dv.depthLimit = savedLimit
				r := dv.explore(rebuild(ast.True{}), depth+1, emit)
				dv.depthLimit = 0
				return r
			})
			dv.depthLimit = savedLimit
			return cont
		}
		return dv.explore(g.Body, depth+1, func() bool {
			return dv.explore(rebuild(ast.True{}), depth+1, emit)
		})

	default:
		dv.err = &RuntimeError{Goal: g.String(), Msg: "unknown goal node"}
		return false
	}
}

// stepLit handles the atom-bearing goals: queries, updates, and calls.
func (dv *deriv) stepLit(g *ast.Lit, rebuild func(ast.Goal) ast.Goal, depth int, emit func() bool) bool {
	switch g.Op {
	case ast.OpQuery:
		if !dv.budget() {
			return false
		}
		return dv.d.Scan(g.Atom.Pred, g.Atom.Args, dv.env, func() bool {
			dv.pushTrace(TraceEntry{Op: TraceQuery, Atom: dv.env.ResolveAtom(g.Atom)})
			cont := dv.explore(rebuild(ast.True{}), depth+1, emit)
			dv.popTrace(cont)
			return cont
		})

	case ast.OpIns, ast.OpDel:
		if !dv.budget() {
			return false
		}
		// Resolve the update's arguments. With tracing off they land in a
		// reused scratch slice (the database copies them on store); with
		// tracing on the trace entry must own them, so allocate.
		var args []term.Term
		if dv.e.opts.Trace {
			args = dv.env.ResolveArgs(g.Atom.Args)
		} else {
			dv.argBuf = dv.argBuf[:0]
			for _, t := range g.Atom.Args {
				dv.argBuf = append(dv.argBuf, dv.env.Walk(t))
			}
			args = dv.argBuf
		}
		for _, t := range args {
			if t.IsVar() {
				dv.err = &RuntimeError{Goal: g.String(), Msg: "update with unbound variable (unsafe program)"}
				return false
			}
		}
		dbMark := dv.d.Mark()
		var op TraceOp
		if g.Op == ast.OpIns {
			dv.d.Insert(g.Atom.Pred, args)
			op = TraceIns
		} else {
			dv.d.Delete(g.Atom.Pred, args)
			op = TraceDel
		}
		dv.pushTrace(TraceEntry{Op: op, Atom: term.Atom{Pred: g.Atom.Pred, Args: args}})
		if w := dv.e.opts.Watch; w != nil {
			if werr := w(dv.d); werr != nil {
				dv.err = &WatchViolation{Cause: werr, Trace: append([]TraceEntry(nil), dv.trace...)}
				return false
			}
		}
		cont := dv.explore(rebuild(ast.True{}), depth+1, emit)
		dv.popTrace(cont)
		if cont {
			dv.d.Undo(dbMark)
		}
		return cont

	case ast.OpCall:
		// First-argument dispatch: only rules whose head can unify with the
		// call's (walked) first argument are attempted. The linear fallback
		// tries every rule; both enumerate candidates in source order.
		var rules []ast.Rule
		if dv.e.opts.NoClauseIndex {
			rules = dv.e.prog.RulesFor(g.Atom.Pred, len(g.Atom.Args))
		} else {
			rules = dv.e.idx.candidates(g.Atom.Pred, g.Atom.Args, dv.env)
		}
		if len(rules) == 0 {
			// Unknown predicate: no rules and not a base relation — treat as
			// a query against an empty relation (fails), matching Datalog
			// convention.
			return true
		}
		for _, r := range rules {
			if !dv.budget() {
				return false
			}
			rn := dv.prn
			rn.Reset()
			head := rn.Atom(r.Head)
			envMark := dv.env.Mark()
			if !dv.env.UnifyAtoms(head, g.Atom) {
				dv.env.Undo(envMark)
				continue
			}
			body := ast.Rename(r.Body, rn)
			dv.pushTrace(TraceEntry{Op: TraceCall, Atom: dv.env.ResolveAtom(g.Atom)})
			cont := dv.explore(rebuild(body), depth+1, emit)
			dv.popTrace(cont)
			if !cont {
				return false
			}
			dv.env.Undo(envMark)
		}
		return true
	}
	dv.err = &RuntimeError{Goal: g.String(), Msg: "unexpected literal op"}
	return false
}

// budget consumes one step from the budget; false means the search must
// abort (dv.err set). Under parallel search the budget is the shared
// aggregate across workers.
func (dv *deriv) budget() bool {
	dv.steps++
	if dv.shared != nil {
		if dv.shared.Add(1) > dv.e.opts.MaxSteps {
			dv.err = ErrBudget
			return false
		}
		return true
	}
	if dv.steps > dv.e.opts.MaxSteps {
		dv.err = ErrBudget
		return false
	}
	return true
}

func (dv *deriv) pushTrace(t TraceEntry) {
	if dv.e.opts.Trace {
		dv.trace = append(dv.trace, t)
	}
}

// popTrace removes the last trace entry when the branch is being undone
// (cont == true means we are backtracking past it).
func (dv *deriv) popTrace(cont bool) {
	if dv.e.opts.Trace && cont {
		dv.trace = dv.trace[:len(dv.trace)-1]
	}
}

// ckey is a 128-bit configuration key: two independent FNV-1a streams over
// the canonical serialization of (goal, database fingerprint).
type ckey [2]uint64

// configKey canonicalizes the configuration (g under the current env, plus
// the database fingerprint) and hashes it. Free variables are numbered by
// first occurrence, so α-equivalent configurations share keys; branches of
// a concurrent composition are sorted, exploiting commutativity of | to
// merge symmetric states. The scratch buffer and numbering map are reused
// across calls, and the key is a fixed-size hash rather than a retained
// string — the canonicalization used to be the search's hottest allocation
// site and now allocates nothing in steady state.
func (dv *deriv) configKey(g ast.Goal) ckey {
	buf := dv.keyBuf[:0]
	if dv.keyVars == nil {
		dv.keyVars = make(map[int64]int, 16)
	} else {
		clear(dv.keyVars)
	}
	buf = dv.writeCanon(buf, g, dv.keyVars)
	dv.keyBuf = buf
	// Two streams with distinct multipliers so they stay independent.
	const primeLo, primeHi = 1099511628211, 0xff51afd7ed558ccd
	lo := uint64(14695981039346656037)
	hi := uint64(0x9e3779b97f4a7c15)
	for _, b := range buf {
		lo = (lo ^ uint64(b)) * primeLo
		hi = (hi ^ uint64(b)) * primeHi
	}
	fp := dv.d.Fingerprint()
	lo = (lo ^ fp[0]) * primeLo
	hi = (hi ^ fp[1]) * primeHi
	return ckey{lo, hi}
}

func (dv *deriv) writeCanon(buf []byte, g ast.Goal, vars map[int64]int) []byte {
	switch g := g.(type) {
	case ast.True:
		buf = append(buf, 'T')
	case *ast.Lit:
		switch g.Op {
		case ast.OpQuery:
			buf = append(buf, 'q', ':')
		case ast.OpIns:
			buf = append(buf, 'i', ':')
		case ast.OpDel:
			buf = append(buf, 'd', ':')
		default:
			buf = append(buf, 'c', ':')
		}
		buf = dv.writeCanonAtom(buf, g.Atom, vars)
	case *ast.Empty:
		buf = append(buf, 'e', ':')
		buf = append(buf, g.Pred...)
	case *ast.Builtin:
		buf = append(buf, 'b', ':')
		buf = dv.writeCanonAtom(buf, term.Atom{Pred: g.Name, Args: g.Args}, vars)
	case *ast.Seq:
		buf = append(buf, 'S', '(')
		for i, sub := range g.Goals {
			if i > 0 {
				buf = append(buf, ';')
			}
			buf = dv.writeCanon(buf, sub, vars)
		}
		buf = append(buf, ')')
	case *ast.Conc:
		// Sort branch serializations: | is commutative. Branch-local
		// variable numbering would break cross-branch sharing, so branches
		// are serialized with the shared numbering first, then sorted.
		parts := make([]string, len(g.Goals))
		for i, sub := range g.Goals {
			parts[i] = string(dv.writeCanon(nil, sub, vars))
		}
		sortStrings(parts)
		buf = append(buf, 'C', '(')
		for i, p := range parts {
			if i > 0 {
				buf = append(buf, '&')
			}
			buf = append(buf, p...)
		}
		buf = append(buf, ')')
	case *ast.Iso:
		buf = append(buf, 'I', '(')
		buf = dv.writeCanon(buf, g.Body, vars)
		buf = append(buf, ')')
	}
	return buf
}

func (dv *deriv) writeCanonAtom(buf []byte, a term.Atom, vars map[int64]int) []byte {
	buf = append(buf, a.Pred...)
	buf = append(buf, '(')
	for i, t := range a.Args {
		if i > 0 {
			buf = append(buf, ',')
		}
		w := dv.env.Walk(t)
		if w.IsVar() {
			n, ok := vars[w.VarID()]
			if !ok {
				n = len(vars)
				vars[w.VarID()] = n
			}
			buf = append(buf, '_')
			buf = strconv.AppendInt(buf, int64(n), 10)
		} else {
			switch w.Kind() {
			case term.Sym:
				// Length-prefixed: API-constructed symbol names may contain
				// arbitrary bytes, and must never collide with key
				// structure characters.
				name := w.SymName()
				buf = append(buf, 's')
				buf = strconv.AppendInt(buf, int64(len(name)), 10)
				buf = append(buf, ':')
				buf = append(buf, name...)
			case term.Int:
				buf = append(buf, 'n')
				buf = strconv.AppendInt(buf, w.IntVal(), 10)
			case term.Str:
				buf = append(buf, 'x')
				buf = strconv.AppendQuote(buf, w.StrVal())
			default:
				buf = append(buf, w.String()...)
			}
		}
	}
	buf = append(buf, ')')
	return buf
}

func sortStrings(ss []string) {
	// Insertion sort: branch counts are small, avoids pulling in sort for a
	// hot path with tiny inputs.
	for i := 1; i < len(ss); i++ {
		for j := i; j > 0 && ss[j] < ss[j-1]; j-- {
			ss[j], ss[j-1] = ss[j-1], ss[j]
		}
	}
}
