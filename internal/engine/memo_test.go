package engine

import (
	"fmt"
	"sort"
	"strings"
	"testing"

	"repro/internal/db"
	"repro/internal/obs"
	"repro/internal/parser"
	"repro/internal/term"
)

// memoSetup builds an engine with tabling on (Mode "all" unless overridden)
// and the program's fact database.
func memoSetup(t *testing.T, src string, memo *MemoOptions) (*Engine, *db.DB) {
	t.Helper()
	prog := parser.MustParse(src)
	d, err := db.FromFacts(prog.Facts)
	if err != nil {
		t.Fatal(err)
	}
	if memo == nil {
		memo = &MemoOptions{Mode: "all"}
	}
	opts := DefaultOptions()
	opts.Memo = memo
	return New(prog, opts), d
}

// solutionsKey flattens an answer multiset into sorted strings for
// multiset comparison.
func solutionsKey(sols []Solution) []string {
	out := make([]string, 0, len(sols))
	for _, s := range sols {
		keys := make([]string, 0, len(s.Bindings))
		for v := range s.Bindings {
			keys = append(keys, v)
		}
		sort.Strings(keys)
		line := ""
		for _, v := range keys {
			line += v + "=" + s.Bindings[v].String() + ";"
		}
		out = append(out, line)
	}
	sort.Strings(out)
	return out
}

const memoProg = `
edge(a, b). edge(b, c). edge(c, d). edge(b, d).
reach(X, Y) :- edge(X, Y).
reach(X, Y) :- edge(X, Z), reach(Z, Y).
big(X) :- val(X, V), gt(V, 10).
val(p, 20). val(q, 5). val(r, 30).
`

// TestMemoHitReplay proves the same call twice: the first fills the table,
// the second replays, and both return the same answer multiset as an
// untabled engine.
func TestMemoHitReplay(t *testing.T) {
	e, d := memoSetup(t, memoProg, nil)
	plain := NewDefault(parser.MustParse(memoProg))

	goal := parser.MustParseGoal("reach(a, Y)", 1000)
	want, _, err := plain.Solutions(goal, d.Clone(), 0)
	if err != nil {
		t.Fatal(err)
	}

	sols1, res1, err := e.Solutions(goal, d, 0)
	if err != nil {
		t.Fatal(err)
	}
	if res1.Stats.MemoMisses == 0 {
		t.Fatalf("first call: no memo miss recorded: %+v", res1.Stats)
	}
	sols2, res2, err := e.Solutions(goal, d, 0)
	if err != nil {
		t.Fatal(err)
	}
	if res2.Stats.MemoHits == 0 {
		t.Fatalf("second call: no memo hit recorded: %+v", res2.Stats)
	}
	wantKey := solutionsKey(want)
	for i, sols := range [][]Solution{sols1, sols2} {
		got := solutionsKey(sols)
		if fmt.Sprint(got) != fmt.Sprint(wantKey) {
			t.Errorf("call %d: answers %v, want %v", i+1, got, wantKey)
		}
	}
	if st := e.MemoStats(); st == nil || st.Hits == 0 || st.Entries == 0 {
		t.Errorf("store snapshot missing hits/entries: %+v", st)
	}
}

// TestMemoFailureCached caches empty answer sets too: a failing call is a
// miss once and a (failing) hit afterwards.
func TestMemoFailureCached(t *testing.T) {
	e, d := memoSetup(t, memoProg, nil)
	goal := parser.MustParseGoal("reach(d, Y)", 1000)
	res1, err := e.Prove(goal, d)
	if err != nil {
		t.Fatal(err)
	}
	res2, err := e.Prove(goal, d)
	if err != nil {
		t.Fatal(err)
	}
	if res1.Success || res2.Success {
		t.Fatal("reach(d, Y) should fail")
	}
	if res2.Stats.MemoHits == 0 {
		t.Errorf("failing call not served from table: %+v", res2.Stats)
	}
}

// TestMemoInvalidation mutates a support relation between calls: the entry
// must be dropped (stale fingerprint), and rolling the mutation back must
// restore hits — the fingerprint is content-based, not counter-based.
func TestMemoInvalidation(t *testing.T) {
	e, d := memoSetup(t, memoProg, nil)
	goal := parser.MustParseGoal("reach(a, Y)", 1000)
	if _, err := e.Prove(goal, d); err != nil {
		t.Fatal(err)
	}

	// Mutate edge/2: the cached reach entries must go stale.
	row := []term.Term{term.NewSym("d"), term.NewSym("e")}
	d.Insert("edge", row)
	d.ResetTrail()
	sols, res, err := e.Solutions(goal, d, 0)
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.MemoInvalidations == 0 {
		t.Errorf("no invalidation after support mutation: %+v", res.Stats)
	}
	found := false
	for _, s := range sols {
		if s.Bindings["Y"].Equal(term.NewSym("e")) {
			found = true
		}
	}
	if !found {
		t.Error("stale answers replayed: reach(a, e) missing after edge(d, e) insert")
	}

	// Mutate and roll back without an intermediate lookup: the content
	// fingerprint returns to the refill's state, so the entry hits — the
	// versioning is content-based, not counter-based (an Undo that
	// restores the tuples restores the hits).
	mark := d.Mark()
	d.Insert("edge", []term.Term{term.NewSym("x"), term.NewSym("y")})
	d.Undo(mark)
	res2, err := e.Prove(goal, d)
	if err != nil {
		t.Fatal(err)
	}
	if res2.Stats.MemoInvalidations != 0 {
		t.Errorf("rolled-back mutation invalidated: %+v", res2.Stats)
	}
	if res2.Stats.MemoHits == 0 {
		t.Errorf("rolled-back mutation missed: %+v", res2.Stats)
	}
}

// TestMemoReplicaSharing proves on one database replica and replays on
// another holding the same tuples: content fingerprints agree across
// replicas, so the second engine's session hits the shared store.
func TestMemoReplicaSharing(t *testing.T) {
	store := NewMemoStore(0)
	e1, d1 := memoSetup(t, memoProg, &MemoOptions{Mode: "all", Store: store})
	e2, d2 := memoSetup(t, memoProg, &MemoOptions{Mode: "all", Store: store})
	goal := parser.MustParseGoal("reach(a, Y)", 1000)
	if _, err := e1.Prove(goal, d1); err != nil {
		t.Fatal(err)
	}
	res, err := e2.Prove(goal, d2)
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.MemoHits == 0 {
		t.Errorf("replica did not hit the shared store: %+v", res.Stats)
	}
}

// TestMemoKeyAliasing distinguishes p(X, Y) from p(X, X): the key encodes
// variable identity by first occurrence.
func TestMemoKeyAliasing(t *testing.T) {
	src := `
pair(a, b). pair(c, c).
both(X, Y) :- pair(X, Y).
`
	e, d := memoSetup(t, src, nil)
	free := parser.MustParseGoal("both(X, Y)", 1000)
	sols, _, err := e.Solutions(free, d, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(sols) != 2 {
		t.Fatalf("both(X, Y): %d answers, want 2", len(sols))
	}
	same := parser.MustParseGoal("both(X, X)", 2000)
	sols, res, err := e.Solutions(same, d, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(sols) != 1 || !sols[0].Bindings["X"].Equal(term.NewSym("c")) {
		t.Fatalf("both(X, X): answers %v, want exactly X=c", solutionsKey(sols))
	}
	if res.Stats.MemoHits != 0 {
		t.Errorf("both(X, X) reused both(X, Y)'s entry: %+v", res.Stats)
	}
}

// TestMemoAnswerAliasing replays body-made aliasing between call
// variables: same(X, Y) unifies X and Y without grounding either when
// called fully free... here via eq on queried values.
func TestMemoAnswerAliasing(t *testing.T) {
	src := `
val(p, 20). val(q, 5).
eqv(X, Y) :- val(X, V), val(Y, W), eq(V, W).
`
	e, d := memoSetup(t, src, nil)
	goal := parser.MustParseGoal("eqv(A, B)", 1000)
	want, _, err := NewDefault(parser.MustParse(src)).Solutions(goal, d.Clone(), 0)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		got, _, err := e.Solutions(goal, d, 0)
		if err != nil {
			t.Fatal(err)
		}
		if fmt.Sprint(solutionsKey(got)) != fmt.Sprint(solutionsKey(want)) {
			t.Errorf("call %d: %v, want %v", i+1, solutionsKey(got), solutionsKey(want))
		}
	}
}

// TestMemoDuplicatesPreserved keeps the answer MULTISET: a ground call
// succeeding through two derivations replays two successes.
func TestMemoDuplicatesPreserved(t *testing.T) {
	src := `
p(a). q(a).
twice(X) :- p(X).
twice(X) :- q(X).
`
	e, d := memoSetup(t, src, nil)
	goal := parser.MustParseGoal("twice(a)", 1000)
	for i := 0; i < 2; i++ {
		sols, _, err := e.Solutions(goal, d, 0)
		if err != nil {
			t.Fatal(err)
		}
		if len(sols) != 2 {
			t.Errorf("call %d: %d successes, want 2 (multiset parity)", i+1, len(sols))
		}
	}
}

// TestMemoAutoSelection: auto mode tables only the top-K predicates by
// profile cost, and ineligible predicates are never tabled at all.
func TestMemoAutoSelection(t *testing.T) {
	src := `
val(p, 20).
big(X) :- val(X, V), gt(V, 10).
small(X) :- val(X, V), lt(V, 10).
write(X) :- ins.log(X).
`
	profile := map[string]PredProfile{
		"big":   {Calls: 100, TimeUs: 500},
		"small": {Calls: 1, TimeUs: 1},
	}
	e, _ := memoSetup(t, src, &MemoOptions{Mode: "auto", TopK: 1, Profile: profile})
	tabled := e.MemoTabled()
	if len(tabled) != 1 || tabled[0] != "big/1" {
		t.Errorf("auto top-1 tabled %v, want [big/1]", tabled)
	}

	// Named selection; update-bearing predicates stay out even when named.
	e2, _ := memoSetup(t, src, &MemoOptions{Mode: "small,write"})
	tabled = e2.MemoTabled()
	if len(tabled) != 1 || tabled[0] != "small/1" {
		t.Errorf("csv mode tabled %v, want [small/1]", tabled)
	}
}

// TestMemoEviction bounds the store: a tiny budget forces LRU eviction and
// counts it.
func TestMemoEviction(t *testing.T) {
	store := NewMemoStore(0)
	store.maxBytes = 600 // a few entries at most
	e, d := memoSetup(t, memoProg, &MemoOptions{Mode: "all", Store: store})
	for _, v := range []string{"a", "b", "c", "d"} {
		goal := parser.MustParseGoal("reach("+v+", Y)", 1000)
		if _, err := e.Prove(goal, d); err != nil {
			t.Fatal(err)
		}
	}
	st := store.Snapshot()
	if st.Evictions == 0 {
		t.Errorf("no evictions under a %d-byte budget: %+v", store.maxBytes, st)
	}
	if st.Bytes > 600+256 {
		t.Errorf("store bytes %d exceed the bound", st.Bytes)
	}
}

// TestMemoTraceAnnotations: span trees label tabled calls with
// [memo miss] on the filling call and [memo hit] on replays.
func TestMemoTraceAnnotations(t *testing.T) {
	prog := parser.MustParse(memoProg)
	d, err := db.FromFacts(prog.Facts)
	if err != nil {
		t.Fatal(err)
	}
	opts := DefaultOptions()
	opts.Trace = true
	opts.Memo = &MemoOptions{Mode: "all"}
	e := New(prog, opts)
	goal := parser.MustParseGoal("big(p)", 1000)
	res1, err := e.Prove(goal, d)
	if err != nil {
		t.Fatal(err)
	}
	res2, err := e.Prove(goal, d)
	if err != nil {
		t.Fatal(err)
	}
	if !spanTreeContains(res1.Spans, "[memo miss]") {
		t.Errorf("fill call span missing [memo miss]: %v", res1.Spans)
	}
	if !spanTreeContains(res2.Spans, "[memo hit]") {
		t.Errorf("replay call span missing [memo hit]: %v", res2.Spans)
	}
}

func spanTreeContains(s *obs.Span, want string) bool {
	if s == nil {
		return false
	}
	if strings.Contains(s.Label, want) {
		return true
	}
	for _, c := range s.Children {
		if spanTreeContains(c, want) {
			return true
		}
	}
	return false
}

// TestMemoProveIDBypass: iterative deepening must not consult the table (a
// cutoff would make fills non-exhaustive), and plain DFS afterwards still
// works.
func TestMemoProveIDBypass(t *testing.T) {
	e, d := memoSetup(t, memoProg, nil)
	goal := parser.MustParseGoal("reach(a, d)", 1000)
	res, err := e.ProveID(goal, d, 2)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Success {
		t.Fatal("ProveID failed")
	}
	if res.Stats.MemoHits != 0 || res.Stats.MemoMisses != 0 {
		t.Errorf("ProveID consulted the memo table: %+v", res.Stats)
	}
}

// TestMemoConcBypass: calls interleaving under un-isolated '|' must not be
// served from the table — a sibling's update between replayed answers
// would be invisible. The differential check: a concurrent sibling inserts
// the tuple the tabled call reads.
func TestMemoConcBypass(t *testing.T) {
	src := `
seen(X) :- mark(X).
flow(X) :- seen(X), ins.done(X).
`
	e, d := memoSetup(t, src, nil)
	goal := parser.MustParseGoal("ins.mark(m) | flow(m)", 1000)
	res, err := e.Prove(goal, d)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Success {
		t.Fatal("interleaved goal failed with tabling on")
	}
	if res.Stats.MemoHits != 0 {
		t.Errorf("tabled replay under un-isolated '|': %+v", res.Stats)
	}
}

// TestMemoDisabledAllocs is the PR's zero-overhead guard: with Options.Memo
// nil the call dispatch path pays a nil check and nothing else, so a
// steady-state Prove allocates exactly what it allocated before tabling
// existed — 24 allocs/op for this goal on the pre-tabling engine (goal
// resolution, the Result, and the bindings map), measured on the same
// program/goal pair. Any growth here means the disabled path regressed.
func TestMemoDisabledAllocs(t *testing.T) {
	prog := parser.MustParse(memoProg)
	d, err := db.FromFacts(prog.Facts)
	if err != nil {
		t.Fatal(err)
	}
	e := NewDefault(prog)
	goal := parser.MustParseGoal("reach(a, d)", 1000)
	if _, err := e.Prove(goal, d); err != nil { // warm the deriv pool
		t.Fatal(err)
	}
	n := testing.AllocsPerRun(200, func() {
		if _, err := e.Prove(goal, d); err != nil {
			panic(err)
		}
	})
	if n > 24 {
		t.Errorf("memo-disabled Prove: %v allocs/op, want <= 24 (pre-tabling baseline)", n)
	}
}
