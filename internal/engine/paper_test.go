package engine

// Tests transcribing the paper's own formulas, with the exact entailments
// (initial database, formula, final database) it states.

import (
	"testing"

	"repro/internal/db"
	"repro/internal/parser"
	"repro/internal/term"
)

// proveFrom builds a DB from facts-src, proves goal, and returns
// (success, final db).
func proveFrom(t *testing.T, rules, facts, goal string) (bool, *db.DB) {
	t.Helper()
	prog, err := parser.Parse(rules + "\n" + facts)
	if err != nil {
		t.Fatal(err)
	}
	g, _, err := parser.ParseGoal(goal, prog.VarHigh)
	if err != nil {
		t.Fatal(err)
	}
	d, err := db.FromFacts(prog.Facts)
	if err != nil {
		t.Fatal(err)
	}
	res, err := NewDefault(prog).Prove(g, d)
	if err != nil {
		t.Fatal(err)
	}
	return res.Success, d
}

func dbOf(t *testing.T, facts string) *db.DB {
	t.Helper()
	prog, err := parser.Parse(facts)
	if err != nil {
		t.Fatal(err)
	}
	d, err := db.FromFacts(prog.Facts)
	if err != nil {
		t.Fatal(err)
	}
	return d
}

// Section 4 (preliminaries): {a,b} ⇒ {} ⊨ del.a ⊗ del.b   and
// {} ⇒ {c,d} ⊨ ins.c ⊗ ins.d, and from {a,b}:
// (del.a ⊗ del.b) | (ins.c ⊗ ins.d) ends at {c,d}.
func TestPaperSequentialUpdateFormulas(t *testing.T) {
	ok, final := proveFrom(t, "", "a. b.", "del.a, del.b")
	if !ok || !final.Equal(db.New()) {
		t.Fatalf("del.a ⊗ del.b: ok=%v final=\n%s", ok, final)
	}
	ok, final = proveFrom(t, "", "", "ins.c, ins.d")
	if !ok || !final.Equal(dbOf(t, "c. d.")) {
		t.Fatalf("ins.c ⊗ ins.d: ok=%v final=\n%s", ok, final)
	}
	ok, final = proveFrom(t, "", "a. b.", "(del.a, del.b) | (ins.c, ins.d)")
	if !ok || !final.Equal(dbOf(t, "c. d.")) {
		t.Fatalf("concurrent formula: ok=%v final=\n%s", ok, final)
	}
}

// Same section, with the rulebase P = { p ← del.a ⊗ del.b,
// q ← ins.c ⊗ ins.d }: P, {a,b} ⇒ {} ⊨ p;  P, {} ⇒ {c,d} ⊨ q;
// P, {a,b} ⇒ {c,d} ⊨ p | q.
func TestPaperRulebaseEntailments(t *testing.T) {
	rules := `
		p :- del.a, del.b.
		q :- ins.c, ins.d.
	`
	ok, final := proveFrom(t, rules, "a. b.", "p")
	if !ok || final.Size() != 0 {
		t.Fatalf("P,{ab}⇒{} ⊨ p: ok=%v final=\n%s", ok, final)
	}
	ok, final = proveFrom(t, rules, "", "q")
	if !ok || !final.Equal(dbOf(t, "c. d.")) {
		t.Fatalf("P,{}⇒{cd} ⊨ q: ok=%v final=\n%s", ok, final)
	}
	ok, final = proveFrom(t, rules, "a. b.", "p | q")
	if !ok || !final.Equal(dbOf(t, "c. d.")) {
		t.Fatalf("P,{ab}⇒{cd} ⊨ p|q: ok=%v final=\n%s", ok, final)
	}
}

// Section 2: the precondition program fi[p(b) ⊗ del.p(b)] "first asks if
// p(b) is in the database" — succeeds and removes it when present, fails
// leaving the database unchanged when absent.
func TestPaperPreconditionFormula(t *testing.T) {
	ok, final := proveFrom(t, "", "p(b).", "p(b), del.p(b)")
	if !ok || final.Size() != 0 {
		t.Fatalf("precondition met: ok=%v final=\n%s", ok, final)
	}
	ok, final = proveFrom(t, "", "p(a).", "p(b), del.p(b)")
	if ok || final.Size() != 1 {
		t.Fatalf("precondition unmet: ok=%v final=\n%s", ok, final)
	}
}

// Section 2: the rule r(X) ← p(X) ⊗ del.p(X): "Using b as the parameter
// value, r(b) commits if p(b) is in the database at the start of
// execution."
func TestPaperParameterizedTransaction(t *testing.T) {
	rules := `r(X) :- p(X), del.p(X).`
	ok, _ := proveFrom(t, rules, "p(b).", "r(b)")
	if !ok {
		t.Fatal("r(b) failed with p(b) present")
	}
	ok, _ = proveFrom(t, rules, "p(a).", "r(b)")
	if ok {
		t.Fatal("r(b) committed without p(b)")
	}
	// The open call r(X) binds X to a present tuple.
	prog := parser.MustParse(rules + "\np(q7).")
	g := parser.MustParseGoal("r(X)", prog.VarHigh)
	d, _ := db.FromFacts(prog.Facts)
	res, err := NewDefault(prog).Prove(g, d)
	if err != nil || !res.Success {
		t.Fatal(err, res)
	}
	if got := res.Bindings["X"]; !got.Equal(term.NewSym("q7")) {
		t.Fatalf("X = %v", got)
	}
}

// Section 2 (isolation): "if t1, t2, …, tn are database programs, then the
// goal ⊙t1 | ⊙t2 | … | ⊙tn executes them serializably."
func TestPaperIsolationSerializesPrograms(t *testing.T) {
	rules := `
		t1 :- stock(S), S >= 1, del.stock(S), sub(S, 1, R), ins.stock(R).
	`
	// Three isolated consumers over stock(2): only two can succeed — the
	// whole goal must fail (serializable means one consumer sees 0).
	ok, final := proveFrom(t, rules, "stock(2).", "iso(t1) | iso(t1) | iso(t1)")
	if ok {
		t.Fatal("three isolated decrements of stock(2) committed")
	}
	if !final.Equal(dbOf(t, "stock(2).")) {
		t.Fatalf("failed goal changed db:\n%s", final)
	}
	// Two succeed.
	ok, final = proveFrom(t, rules, "stock(2).", "iso(t1) | iso(t1)")
	if !ok || !final.Equal(dbOf(t, "stock(0).")) {
		t.Fatalf("two isolated decrements: ok=%v final=\n%s", ok, final)
	}
}

// Example 3.2's process structure: simulate ← get-work ⊗ (workflow | simulate):
// "a new concurrent process is created for each work item". Verified by
// the prover over a fixed item feed, including termination via the
// emptiness test.
func TestPaperSimulationRecursion(t *testing.T) {
	rules := `
		simulate :- newitem(X), del.newitem(X), (workflow(X) | simulate).
		simulate :- empty.newitem.
		workflow(X) :- ins.done(X).
	`
	ok, final := proveFrom(t, rules, "newitem(w1). newitem(w2). newitem(w3).", "simulate")
	if !ok {
		t.Fatal("simulate failed")
	}
	if final.Count("done", 1) != 3 || final.Count("newitem", 1) != 0 {
		t.Fatalf("simulation incomplete:\n%s", final)
	}
}

// The environment as a process (Section 3): simulate | environment, where
// the environment injects the work items.
func TestPaperEnvironmentProcess(t *testing.T) {
	rules := `
		simulate :- newitem(X), del.newitem(X), (workflow(X) | simulate).
		simulate :- eof, empty.newitem.
		workflow(X) :- ins.done(X).
		environment :- ins.newitem(e1), ins.newitem(e2), ins.eof.
	`
	ok, final := proveFrom(t, rules, "", "simulate | environment")
	if !ok {
		t.Fatal("simulate | environment failed")
	}
	if final.Count("done", 1) != 2 {
		t.Fatalf("environment items not processed:\n%s", final)
	}
}
