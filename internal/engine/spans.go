package engine

import (
	"strconv"

	"repro/internal/obs"
)

// buildSpans converts the witness trace into a structured span tree: a root
// "txn" span, one "iso" span per isolated sub-transaction (nested by the
// TraceIsoBegin/TraceIsoEnd markers), one "branch" span per concurrent
// branch that executed operations (nested by the stable branch-id paths the
// search recorded), and a leaf span per elementary operation.
func (dv *deriv) buildSpans(label string, st Stats) *obs.Span {
	root := &obs.Span{Kind: "txn", Label: label, Steps: st.Steps}

	// A frame is one iso scope: branch spans materialize lazily per scope
	// because paths inside an iso body are relative to the body's root.
	type frame struct {
		span  *obs.Span
		byID  map[int32]*obs.Span
		begin int64 // step counter at the scope's TraceIsoBegin
	}
	stack := []frame{{span: root, byID: map[int32]*obs.Span{}}}

	// attach resolves a branch path within the current scope, creating
	// branch spans (and honoring parentOf links from branch expansions) as
	// needed, and returns the span the operation belongs under.
	attach := func(top *frame, path []int32) *obs.Span {
		cur := top.span
		for _, id := range path {
			s := top.byID[id]
			if s == nil {
				parent := cur
				if pid, ok := dv.parentOf[id]; ok {
					if ps := top.byID[pid]; ps != nil {
						parent = ps
					}
				}
				s = &obs.Span{Kind: "branch", Label: "b" + strconv.Itoa(int(id))}
				parent.Add(s)
				top.byID[id] = s
			}
			cur = s
		}
		return cur
	}

	for _, e := range dv.trace {
		top := &stack[len(stack)-1]
		switch e.Op {
		case TraceIsoBegin:
			parent := attach(top, e.Path)
			s := &obs.Span{Kind: "iso"}
			parent.Add(s)
			stack = append(stack, frame{span: s, byID: map[int32]*obs.Span{}, begin: e.Steps})
		case TraceIsoEnd:
			if len(stack) > 1 {
				top.span.Steps = e.Steps - top.begin
				stack = stack[:len(stack)-1]
			}
		default:
			parent := attach(top, e.Path)
			label := e.String()
			// Annotate tabled call steps: hit = answers replayed from a
			// prior fill, miss = this call filled the memo table.
			switch e.Memo {
			case MemoHit:
				label += " [memo hit]"
			case MemoMiss:
				label += " [memo miss]"
			}
			leaf := &obs.Span{Kind: e.Op.String(), Label: label, Ops: 1}
			switch e.Op {
			case TraceQuery, TraceEmpty:
				leaf.Reads = 1
			case TraceIns, TraceDel:
				leaf.Writes = 1
			case TraceCall:
				leaf.Calls = 1
			}
			parent.Add(leaf)
		}
	}
	root.Aggregate()
	root.Steps = st.Steps
	return root
}
