package engine

import (
	"errors"
	"strings"
	"testing"

	"repro/internal/analysis"
	"repro/internal/db"
	"repro/internal/parser"
)

// badProg leaves every decidable fragment: the recursive call to spin sits
// under "|" (Theorem 4.4), which tdvet reports as an error.
const badProg = "spin :- ins.tick | spin.\n?- spin."

func TestOptionsVetRejectsAtLoadTime(t *testing.T) {
	prog, err := parser.Parse(badProg)
	if err != nil {
		t.Fatal(err)
	}
	e := New(prog, Options{Vet: true})
	if e.VetReport() == nil {
		t.Fatal("VetReport() = nil with Options.Vet on")
	}
	if e.Diagnostics() == nil {
		t.Fatal("Diagnostics() = nil with Options.Vet on")
	}

	d := db.New()
	goal := prog.Queries[0]
	_, perr := e.Prove(goal, d)
	if perr == nil {
		t.Fatal("Prove succeeded on a vet-rejected program")
	}
	var ve *analysis.VetError
	if !errors.As(perr, &ve) {
		t.Fatalf("Prove error = %T (%v), want *analysis.VetError", perr, perr)
	}
	// The error must name the offending literal's own position: the
	// recursive call "spin" at line 1, column 20.
	if !strings.Contains(perr.Error(), "1:20") {
		t.Errorf("error %q should carry the literal position 1:20", perr)
	}
	if !strings.Contains(perr.Error(), "recursion-under-conc") {
		t.Errorf("error %q should carry the lint ID", perr)
	}

	// Every Prove-family entry point is guarded.
	if _, err := e.ProveID(goal, d, 1); !errors.As(err, &ve) {
		t.Errorf("ProveID error = %v, want *analysis.VetError", err)
	}
	if _, _, err := e.Solutions(goal, d, 1); !errors.As(err, &ve) {
		t.Errorf("Solutions error = %v, want *analysis.VetError", err)
	}
	if _, _, err := e.ProveDelta(goal, d); !errors.As(err, &ve) {
		t.Errorf("ProveDelta error = %v, want *analysis.VetError", err)
	}
	if _, err := e.Enumerate(goal, d, 1, nil); !errors.As(err, &ve) {
		t.Errorf("Enumerate error = %v, want *analysis.VetError", err)
	}
	if _, err := e.ProvePar(goal, d, 2); !errors.As(err, &ve) {
		t.Errorf("ProvePar error = %v, want *analysis.VetError", err)
	}
}

func TestVetOffLeavesEngineAlone(t *testing.T) {
	prog, err := parser.Parse(badProg)
	if err != nil {
		t.Fatal(err)
	}
	e := New(prog, Options{})
	if e.VetReport() != nil {
		t.Error("VetReport() should be nil when Options.Vet is off")
	}
	if e.Diagnostics() != nil {
		t.Error("Diagnostics() should be nil when Options.Vet is off")
	}
}

func TestVetOnCleanProgramProves(t *testing.T) {
	prog, err := parser.Parse("job(j1).\nwork :- job(J), del.job(J), ins.done(J).\n?- work.")
	if err != nil {
		t.Fatal(err)
	}
	e := New(prog, Options{Vet: true})
	if rep := e.VetReport(); rep == nil || rep.Err() != nil {
		t.Fatalf("clean program should carry an error-free report, got %+v", rep)
	}
	d, err := db.FromFacts(prog.Facts)
	if err != nil {
		t.Fatal(err)
	}
	res, err := e.Prove(prog.Queries[0], d)
	if err != nil {
		t.Fatalf("Prove: %v", err)
	}
	if !res.Success {
		t.Error("work should have a committing execution")
	}
}
