package engine

import (
	"repro/internal/ast"
	"repro/internal/term"
)

// First-argument clause dispatch. The program is compiled once, in New,
// into a per-predicate table that buckets rules by the interned code of
// their head's first argument. A call step then only attempts head
// unification against rules that can actually match: rules whose head
// starts with the same constant, plus the rules whose head starts with a
// variable. Rule order within every candidate list is source order, so
// dispatch is invisible to the search — identical answer sets and identical
// witness traces (dispatch_test.go checks this against the linear fallback
// across the paper examples).

type enginePredArity struct {
	pred  string
	arity int
}

// predClauses is the dispatch entry of one derived predicate.
type predClauses struct {
	// all holds every rule in source order: the candidate list when the
	// call's first argument is unbound (or the predicate is nullary).
	all []ast.Rule
	// varOnly holds the rules whose head's first argument is a variable:
	// the candidate list for a bound first argument that matches no
	// constant bucket.
	varOnly []ast.Rule
	// byCode maps the code of each constant that appears as a head's first
	// argument to the rules that can match it — that constant's rules
	// merged with the variable-headed ones, in source order.
	byCode map[uint64][]ast.Rule
}

// clauseIndex is the compiled dispatch table of a program.
type clauseIndex struct {
	byPred map[enginePredArity]*predClauses
}

// newPredClauses returns an empty dispatch entry for one predicate.
func newPredClauses(arity int) *predClauses {
	pc := &predClauses{}
	if arity > 0 {
		pc.byCode = make(map[uint64][]ast.Rule)
	}
	return pc
}

// add indexes one rule, preserving source order within every bucket. The
// same construction serves the program-wide clauseIndex and the planner's
// per-adornment variants (plan.go).
func (pc *predClauses) add(r ast.Rule) {
	pc.all = append(pc.all, r)
	if len(r.Head.Args) == 0 {
		return
	}
	first := r.Head.Args[0]
	if first.IsVar() {
		// A variable-headed rule joins every existing bucket (and the
		// catch-all list); buckets created later pick it up from
		// varOnly via the seeding below.
		pc.varOnly = append(pc.varOnly, r)
		for c := range pc.byCode {
			pc.byCode[c] = append(pc.byCode[c], r)
		}
		return
	}
	c := first.Code()
	if _, ok := pc.byCode[c]; !ok {
		// New constant bucket: seed it with the variable-headed rules
		// seen so far, keeping global source order.
		pc.byCode[c] = append([]ast.Rule(nil), pc.varOnly...)
	}
	pc.byCode[c] = append(pc.byCode[c], r)
}

// pick returns the candidate list for a call's (walked) first argument.
func (pc *predClauses) pick(args []term.Term, env *term.Env) []ast.Rule {
	if len(args) == 0 {
		return pc.all
	}
	w := env.Walk(args[0])
	if w.IsVar() {
		return pc.all
	}
	if rules, ok := pc.byCode[w.Code()]; ok {
		return rules
	}
	return pc.varOnly
}

// compileClauses builds the dispatch table from the program's rulebase.
func compileClauses(prog *ast.Program) *clauseIndex {
	ci := &clauseIndex{byPred: make(map[enginePredArity]*predClauses)}
	for _, r := range prog.Rules {
		k := enginePredArity{pred: r.Head.Pred, arity: len(r.Head.Args)}
		pc := ci.byPred[k]
		if pc == nil {
			pc = newPredClauses(k.arity)
			ci.byPred[k] = pc
		}
		pc.add(r)
	}
	return ci
}

// candidates returns the rules a call of pred(args) must try, in source
// order, under the current bindings. nil means the predicate has no rules.
func (ci *clauseIndex) candidates(pred string, args []term.Term, env *term.Env) []ast.Rule {
	pc := ci.byPred[enginePredArity{pred: pred, arity: len(args)}]
	if pc == nil {
		return nil
	}
	return pc.pick(args, env)
}
