package engine

import (
	"fmt"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/parser"
)

// Tabled evaluation must be invisible in the answers: for every corpus
// program and goal, an engine with every eligible predicate tabled
// returns exactly the solution multiset (bindings and final database
// fingerprints) of the untabled engine, and agrees on success/failure.
// Each goal runs twice under the tabled engine so the second pass
// replays memo hits over entries filled by the first.
func TestMemoDifferentialCorpus(t *testing.T) {
	for _, file := range planCorpus(t) {
		prog, err := parser.ParseFile(file)
		if err != nil {
			t.Fatalf("parse %s: %v", file, err)
		}
		plainOpts := DefaultOptions()
		tabledOpts := plainOpts
		tabledOpts.Memo = &MemoOptions{Mode: "all"}
		plain := New(prog, plainOpts)
		tabled := New(prog, tabledOpts)
		for i, g := range planGoals(t, prog) {
			name := fmt.Sprintf("%s/goal%d", filepath.Base(file), i)
			t.Run(name, func(t *testing.T) {
				sp, cp := planSolutions(t, plain, prog, g)
				// Pass 1 fills the memo table, pass 2 replays from it;
				// both must match the untabled multiset exactly.
				for pass := 1; pass <= 2; pass++ {
					st, ct := planSolutions(t, tabled, prog, g)
					if ct || cp {
						if ct != cp {
							t.Fatalf("pass %d: solution cap hit by one engine only: tabled=%v plain=%v", pass, ct, cp)
						}
						continue
					}
					if strings.Join(st, "\n") != strings.Join(sp, "\n") {
						t.Fatalf("pass %d: solution multisets differ:\n plain:  %v\n tabled: %v", pass, sp, st)
					}
				}

				// Success/failure parity on a single witness proof.
				dp := freshDB(t, prog)
				rp, err := plain.Prove(g, dp)
				if err != nil {
					t.Fatalf("plain prove: %v", err)
				}
				for pass := 1; pass <= 2; pass++ {
					dt := freshDB(t, prog)
					rt, err := tabled.Prove(g, dt)
					if err != nil {
						t.Fatalf("pass %d: tabled prove: %v", pass, err)
					}
					if rt.Success != rp.Success {
						t.Fatalf("pass %d: success differs: plain=%v tabled=%v", pass, rp.Success, rt.Success)
					}
				}
			})
		}
	}
}

// The machine encodings exercise the prover hardest; run them through the
// same differential check explicitly so a corpus reshuffle can't silently
// drop them. reachChainSrc is the read-only recursive encoding the tabled
// benchmark uses; the QBF/update encodings ship in testdata and are
// covered above (their update-bearing predicates are simply ineligible,
// so tabling must leave them bit-for-bit alone).
const reachChainSrc = `
edge(n0, n1). edge(n1, n2). edge(n2, n3). edge(n3, n4).
edge(n4, n5). edge(n5, n6). edge(n6, n7). edge(n7, n8).
edge(n2, n5). edge(n1, n6). edge(n0, n3).
reach(X, Y) :- edge(X, Y).
reach(X, Z) :- edge(X, Y), reach(Y, Z).
`

func TestMemoDifferentialMachineEncoding(t *testing.T) {
	prog := parser.MustParse(reachChainSrc)
	plainOpts := DefaultOptions()
	tabledOpts := plainOpts
	tabledOpts.Memo = &MemoOptions{Mode: "all"}
	plain := New(prog, plainOpts)
	tabled := New(prog, tabledOpts)
	goals := []string{
		"reach(n0, n8)",
		"reach(n0, X)",
		"reach(X, n8)",
		"reach(X, Y)",
		"reach(n8, n0)",
	}
	for _, src := range goals {
		g := parser.MustParseGoal(src, 1000)
		sp, cp := planSolutions(t, plain, prog, g)
		for pass := 1; pass <= 2; pass++ {
			st, ct := planSolutions(t, tabled, prog, g)
			if ct != cp {
				t.Fatalf("%s pass %d: cap mismatch", src, pass)
			}
			if !ct && strings.Join(st, "\n") != strings.Join(sp, "\n") {
				t.Fatalf("%s pass %d: solution multisets differ:\n plain:  %v\n tabled: %v", src, pass, sp, st)
			}
		}
	}
	if st := tabled.MemoStats(); st == nil || st.Hits == 0 {
		t.Fatalf("machine-encoding differential never hit the memo table: %+v", st)
	}
}
