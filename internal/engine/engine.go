// Package engine implements the proof-theoretic interpreter of Transaction
// Datalog: executional entailment P, D0 ⇒ Dn ⊨ φ, decided by depth-first
// search over the small-step transition system of the paper's Appendix C.
//
// A configuration is a pair (G, D): a residual process tree G and a current
// database D. Transitions:
//
//   - a query literal p(t̄) steps by unifying with a stored tuple (one branch
//     per tuple);
//   - ins.p(c̄) / del.p(c̄) step by updating D (they must be ground when they
//     execute — the run-time face of the paper's safety condition);
//   - empty.p steps iff relation p is empty;
//   - a call of a derived predicate steps by replacing itself with a freshly
//     renamed rule body whose head unifies (one branch per rule);
//   - in a sequential composition only the leftmost component may step;
//   - in a concurrent composition any component may step — this interleaving
//     is what lets concurrent processes communicate through the database;
//   - an isolated goal iso(G) executes G to completion as one macro-step, so
//     siblings never observe its intermediate states (the ⊙ modality).
//
// φ succeeds when the process tree is fully consumed. The engine explores
// branches depth-first with O(1) snapshot / O(changes) rollback on both the
// database and the binding environment, and optionally prunes the search
// with a path-cycle check and a failed-configuration table (tabling). Both
// prunings are sound and preserve the answer set; see the package's tests.
package engine

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"

	"repro/internal/analysis"
	"repro/internal/ast"
	"repro/internal/db"
	"repro/internal/obs"
	"repro/internal/term"
)

// Options configure an Engine.
type Options struct {
	// MaxSteps bounds the total number of transition attempts across the
	// whole search (0 means DefaultMaxSteps). Exceeding it aborts with
	// ErrBudget.
	MaxSteps int64
	// MaxDepth bounds the length of a single derivation path (0 means
	// DefaultMaxDepth). Exceeding it aborts with ErrDepth.
	MaxDepth int
	// LoopCheck prunes branches that revisit a configuration already on the
	// current derivation path. Sound and answer-preserving; required for
	// termination on programs whose recursion does not change the database.
	LoopCheck bool
	// Table memoizes configurations from which exhaustive search found no
	// success, pruning re-exploration across branches. Sound; this is the
	// "tabling" the paper points to for restricted fragments (ablation A1).
	Table bool
	// Trace records the witness execution path (elementary operations in
	// order) for a successful proof, and builds the structured span tree
	// (Result.Spans) attributing operations to concurrent branches and
	// iso sub-transactions.
	Trace bool
	// SpanSink, when non-nil (and Trace is on), receives the span tree of
	// every successful proof. With SpanSink nil and Trace off the engine
	// does no span work at all — the zero-alloc hot path is unchanged.
	SpanSink obs.Sink
	// NoClauseIndex disables first-argument clause dispatch and falls back
	// to trying every rule of the called predicate in source order. The
	// answer set and witness traces are identical either way (the index is
	// purely an optimization); the flag exists for the equivalence tests
	// and for measuring the dispatch win.
	NoClauseIndex bool
	// Watch, when non-nil, is invoked after every database-changing step,
	// on every explored execution path. Returning a non-nil error aborts
	// the search with a *WatchViolation that carries the trace of the
	// offending path (enable Trace to populate it). The verification
	// package uses this to check invariants over ALL reachable states.
	Watch func(d *db.DB) error
	// Vet runs the tdvet static analyzer (internal/analysis) over the
	// program once, at construction time. Error-severity diagnostics
	// (unsafe updates, recursion through '|', updates on derived
	// predicates) make every Prove-family call fail immediately with the
	// *analysis.VetError; the full report stays available through
	// Diagnostics either way. The analysis runs only in New — nothing is
	// added to the prove hot path.
	Vet bool
	// Plan runs the tdplan static planner (internal/analysis.Plan) over
	// the program once, at construction time, and compiles its reordered
	// rule variants into a per-adornment dispatch table. Call steps whose
	// runtime binding pattern matches a planned variant — and that are not
	// interleaving with un-isolated '|' siblings — evaluate the reordered
	// bodies; everything else keeps textual order. The answer set is
	// unchanged (plan_test.go and the corpus differential test check
	// this); only the search order within read-only conjunctions moves.
	// Leaving Plan off (the default, and the server's -noplan fallback)
	// reproduces the unplanned engine exactly. Plan composes with the
	// clause index; under NoClauseIndex it is ignored.
	Plan bool
	// Memo, when non-nil, enables snapshot-versioned memo tables for
	// tabling-eligible derived predicates (see memo.go): repeat calls with
	// the same binding pattern over unchanged support relations replay the
	// cached answer multiset instead of re-running proof search. The answer
	// multiset and success/failure behavior are identical either way (the
	// corpus differential test checks this); with Memo nil the prove hot
	// path pays a single nil check.
	Memo *MemoOptions
	// Profile accumulates per-predicate prover cost: call-step count,
	// clause-dispatch fan-out, and flat time attribution (each interval
	// between consecutive call steps is charged to the most recently
	// dispatched predicate — the CPS search makes inclusive per-call timing
	// meaningless, since a continuation carries the whole residual). Read
	// the cumulative table with ProfileSnapshot. Costs one time.Now per
	// call step when on; with Profile off the hot path is untouched.
	Profile bool
}

// Default limits.
const (
	DefaultMaxSteps = int64(50_000_000)
	DefaultMaxDepth = 400_000
)

// Sentinel errors. Budget and depth exhaustion are errors, not failures:
// the search was truncated, so "no" cannot be trusted.
var (
	ErrBudget = errors.New("engine: step budget exhausted")
	ErrDepth  = errors.New("engine: derivation depth limit exceeded")
)

// RuntimeError reports an execution fault (unbound update, bad builtin
// call). These abort the search: they indicate program bugs that the static
// safety check (ast.CheckSafety) approximates.
type RuntimeError struct {
	Goal string
	Msg  string
}

func (e *RuntimeError) Error() string {
	return fmt.Sprintf("engine: runtime error at %s: %s", e.Goal, e.Msg)
}

// WatchViolation is returned when Options.Watch rejected a reachable
// database state. Trace holds the execution prefix that produced the state
// (populated when Options.Trace is on).
type WatchViolation struct {
	Cause error
	Trace []TraceEntry
}

func (w *WatchViolation) Error() string {
	return fmt.Sprintf("engine: watch violation: %v", w.Cause)
}

// Unwrap exposes the cause for errors.Is/As.
func (w *WatchViolation) Unwrap() error { return w.Cause }

// TraceOp is the kind of an executed elementary operation.
type TraceOp uint8

// Trace operation kinds.
const (
	TraceQuery TraceOp = iota
	TraceIns
	TraceDel
	TraceEmpty
	TraceCall
	TraceBuiltin
	// TraceIsoBegin / TraceIsoEnd bracket the witness execution of an
	// iso(...) body; only matched pairs whose body succeeded survive on the
	// witness path (backtracking pops unmatched markers like any entry).
	TraceIsoBegin
	TraceIsoEnd
)

func (op TraceOp) String() string {
	switch op {
	case TraceQuery:
		return "query"
	case TraceIns:
		return "ins"
	case TraceDel:
		return "del"
	case TraceEmpty:
		return "empty"
	case TraceCall:
		return "call"
	case TraceBuiltin:
		return "builtin"
	case TraceIsoBegin:
		return "iso"
	case TraceIsoEnd:
		return "iso-end"
	default:
		return fmt.Sprintf("op(%d)", uint8(op))
	}
}

// TraceEntry is one executed operation on the witness path.
type TraceEntry struct {
	Op   TraceOp
	Atom term.Atom // resolved at execution time
	// Path identifies the concurrent branch the operation executed in: the
	// chain of stable branch ids from the process-tree root down to the
	// branch, empty for operations outside any concurrent composition.
	// Inside an iso body the path is relative to the body's root.
	Path []int32
	// Steps is the engine's step counter at the time the entry was pushed
	// (used to attribute step counts to iso sub-transactions).
	Steps int64
	// Memo annotates a TraceCall entry served by the memo table (MemoHit:
	// answers replayed from a prior fill; MemoMiss: this call filled the
	// table first). MemoNone for untabled calls.
	Memo uint8
}

// Memo annotation values on a TraceCall entry.
const (
	MemoNone uint8 = iota
	MemoHit
	MemoMiss
)

func (t TraceEntry) String() string {
	switch t.Op {
	case TraceIns:
		return "ins." + t.Atom.String()
	case TraceDel:
		return "del." + t.Atom.String()
	case TraceEmpty:
		return "empty." + t.Atom.Pred
	case TraceIsoBegin:
		return "iso{"
	case TraceIsoEnd:
		return "}"
	default:
		return t.Atom.String()
	}
}

// Stats reports search effort.
type Stats struct {
	Steps        int64 // transition attempts
	MaxDepth     int   // deepest derivation path reached
	TableHits    int64 // prunings due to the failure table
	LoopHits     int64 // prunings due to the path-cycle check
	TableSize    int   // entries in the failure table at the end
	Successes    int64 // number of successful executions emitted
	Unifications int64 // head-unification attempts across call steps
	DispatchHits int64 // call steps served by the first-argument clause index
	PlanHits     int64 // call steps served by a plan-reordered rule variant
	Truncated    bool  // true when budget/depth aborted the search

	// Memo-table effort (Options.Memo; all zero with tabling off).
	MemoHits          int64 // call steps replayed from a valid memo entry
	MemoMisses        int64 // call steps that filled (or re-filled) an entry
	MemoInvalidations int64 // lookups dropped on a stale support fingerprint
}

// Result is the outcome of Prove.
type Result struct {
	// Success reports whether some execution of the goal commits.
	Success bool
	// Bindings maps the goal's named free variables to their witness values
	// (only for successful proofs; variables left unbound are omitted).
	Bindings map[string]term.Term
	// Trace is the witness execution path (only when Options.Trace).
	Trace []TraceEntry
	// Spans is the structured span tree of the witness execution (only for
	// successful proofs when Options.Trace): one node per iso sub-transaction
	// and concurrent branch, with leaf spans for elementary operations.
	Spans *obs.Span
	// Stats reports search effort.
	Stats Stats
}

// Solution is one element of an answer enumeration.
type Solution struct {
	Bindings map[string]term.Term
	// Final is the database state at the end of this execution.
	Final *db.DB
}

// Engine executes TD goals against databases under a fixed program.
// An Engine is not safe for concurrent use; create one per goroutine.
type Engine struct {
	prog *ast.Program
	opts Options
	// idx is the first-argument clause dispatch table, compiled once from
	// the program so every call step pays a map lookup instead of a linear
	// scan over non-matching rules.
	idx *clauseIndex
	// pool holds one reusable search state (environment, renaming, tables,
	// scratch buffers), checked out atomically so repeated Prove calls on a
	// long-lived engine — the server's steady state — do not rebuild them.
	pool atomic.Pointer[deriv]
	// poolHits / poolMisses count searches that reused the pooled state vs
	// built a fresh one (an observability instrument for the PR 2 pooling).
	poolHits   atomic.Int64
	poolMisses atomic.Int64
	// plan is the per-adornment planned dispatch table (Options.Plan),
	// nil when planning is off or the planner reordered nothing; planRep
	// is the full tdplan report for PlanReport.
	plan    *planIndex
	planRep *analysis.PlanReport
	// memo is the compiled tabling configuration (Options.Memo): the
	// selected predicates, their support sets, and the (possibly shared)
	// answer store. nil when tabling is off or nothing was selected.
	memo *engineMemo
	// vet holds the load-time analysis report when Options.Vet is on;
	// vetErr is its error form when the report carries error-severity
	// diagnostics, and fails every Prove-family call.
	vet    *analysis.Report
	vetErr error
	// prof is the cumulative per-predicate profile (Options.Profile),
	// folded in from each search's deriv-local table under profMu.
	profMu sync.Mutex
	prof   map[string]*predAccum
}

// PredProfile is the cumulative prover cost attributed to one derived
// predicate (Options.Profile): this table is what a tabling pass would
// consult to decide which predicates are worth memoizing.
type PredProfile struct {
	Calls  int64 `json:"calls"`   // call steps dispatched
	Fanout int64 `json:"fanout"`  // candidate rules attempted across those calls
	TimeUs int64 `json:"time_us"` // flat self-time between dispatches, µs
}

// ProfileSnapshot returns a copy of the cumulative per-predicate profile,
// or nil when profiling is off or nothing has been dispatched yet.
func (e *Engine) ProfileSnapshot() map[string]PredProfile {
	e.profMu.Lock()
	defer e.profMu.Unlock()
	if len(e.prof) == 0 {
		return nil
	}
	out := make(map[string]PredProfile, len(e.prof))
	for pred, pa := range e.prof {
		out[pred] = PredProfile{Calls: pa.calls, Fanout: pa.fanout, TimeUs: pa.dur.Microseconds()}
	}
	return out
}

// PoolStats reports how many searches reused the pooled scratch state vs
// allocated fresh state.
func (e *Engine) PoolStats() (hits, misses int64) {
	return e.poolHits.Load(), e.poolMisses.Load()
}

// New returns an engine for prog. Zero-valued fields of opts take defaults:
// LoopCheck and Table default to ON — pass explicit false to disable them
// via the With* helpers below or by constructing Options fully.
func New(prog *ast.Program, opts Options) *Engine {
	if opts.MaxSteps == 0 {
		opts.MaxSteps = DefaultMaxSteps
	}
	if opts.MaxDepth == 0 {
		opts.MaxDepth = DefaultMaxDepth
	}
	e := &Engine{prog: prog, opts: opts, idx: compileClauses(prog)}
	if opts.Plan {
		e.planRep = analysis.Plan(prog)
		e.plan = compilePlan(e.planRep)
	}
	if opts.Memo != nil {
		// Tabling gates on the plan report's certificates and support
		// sets; run the planner here if Options.Plan did not (the report
		// stays private — PlanReport() keeps reflecting Options.Plan).
		rep := e.planRep
		if rep == nil {
			rep = analysis.Plan(prog)
		}
		e.memo = newEngineMemo(prog, rep, opts.Memo)
	}
	if opts.Vet {
		e.vet = analysis.Vet(prog)
		e.vetErr = e.vet.Err()
	}
	return e
}

// DefaultOptions are the options used by convenience constructors: pruning
// on, tracing off.
func DefaultOptions() Options {
	return Options{LoopCheck: true, Table: true}
}

// NewDefault returns an engine with DefaultOptions.
func NewDefault(prog *ast.Program) *Engine { return New(prog, DefaultOptions()) }

// Program returns the engine's program.
func (e *Engine) Program() *ast.Program { return e.prog }

// VetReport returns the load-time analysis report, or nil when the engine
// was built without Options.Vet.
func (e *Engine) VetReport() *analysis.Report { return e.vet }

// PlanReport returns the load-time tdplan report, or nil when the engine
// was built without Options.Plan.
func (e *Engine) PlanReport() *analysis.PlanReport { return e.planRep }

// Diagnostics returns the load-time analysis diagnostics, or nil when the
// engine was built without Options.Vet.
func (e *Engine) Diagnostics() []analysis.Diagnostic {
	if e.vet == nil {
		return nil
	}
	return e.vet.Diags
}

// Prove searches for a successful execution of goal starting from d.
// On success, d is left in the final state of the witness execution; on
// failure (or error) d is rolled back to its initial state.
func (e *Engine) Prove(goal ast.Goal, d *db.DB) (*Result, error) {
	if e.vetErr != nil {
		return nil, e.vetErr
	}
	goal, err := e.prog.ResolveGoal(goal)
	if err != nil {
		return nil, err
	}
	dv := newDeriv(e, d)
	defer dv.release()
	res := &Result{}
	dbMark := d.Mark()
	found := false
	cont := dv.explore(goal, 0, func() bool {
		found = true
		return false // stop at first success, keeping the state
	})
	res.Stats = dv.stats()
	if dv.err != nil {
		d.Undo(dbMark)
		res.Stats.Truncated = errors.Is(dv.err, ErrBudget) || errors.Is(dv.err, ErrDepth)
		return res, dv.err
	}
	if cont || !found {
		// Exhausted without success.
		d.Undo(dbMark)
		return res, nil
	}
	res.Success = true
	res.Stats.Successes = 1
	res.Bindings = bindingsOf(goal, dv.env)
	if e.opts.Trace {
		res.Trace = append([]TraceEntry(nil), dv.trace...)
		res.Spans = dv.buildSpans(goal.String(), res.Stats)
		if e.opts.SpanSink != nil {
			e.opts.SpanSink.Emit(res.Spans)
		}
	}
	d.ResetTrail()
	return res, nil
}

// ProveID is Prove with iterative-deepening search. Plain depth-first
// search can dive into an infinite derivation branch (full TD is
// RE-complete — such branches exist) even when another branch succeeds at
// small depth. ProveID explores with growing depth limits (startDepth,
// then doubling), so it finds a successful execution whenever one exists
// at ANY finite depth, and reports definite failure when some iteration
// exhausts the space without cutoffs. The step budget still bounds total
// work across iterations.
func (e *Engine) ProveID(goal ast.Goal, d *db.DB, startDepth int) (*Result, error) {
	if e.vetErr != nil {
		return nil, e.vetErr
	}
	goal, err := e.prog.ResolveGoal(goal)
	if err != nil {
		return nil, err
	}
	if startDepth < 1 {
		startDepth = 16
	}
	res := &Result{}
	var spent int64
	for limit := startDepth; ; limit *= 2 {
		dv := newDeriv(e, d)
		dv.depthLimit = limit
		dv.steps = spent // budget is shared across iterations
		dbMark := d.Mark()
		found := false
		cont := dv.explore(goal, 0, func() bool {
			found = true
			return false
		})
		spent = dv.steps
		res.Stats = dv.stats()
		res.Stats.Steps = spent
		if dv.err != nil {
			d.Undo(dbMark)
			res.Stats.Truncated = errors.Is(dv.err, ErrBudget) || errors.Is(dv.err, ErrDepth)
			err := dv.err
			dv.release()
			return res, err
		}
		if !cont && found {
			res.Success = true
			res.Stats.Successes = 1
			res.Bindings = bindingsOf(goal, dv.env)
			if e.opts.Trace {
				res.Trace = append([]TraceEntry(nil), dv.trace...)
				res.Spans = dv.buildSpans(goal.String(), res.Stats)
				if e.opts.SpanSink != nil {
					e.opts.SpanSink.Emit(res.Spans)
				}
			}
			d.ResetTrail()
			dv.release()
			return res, nil
		}
		d.Undo(dbMark)
		cutoffs := dv.cutoffs
		dv.release()
		if cutoffs == 0 {
			// Exhausted with no cutoff: definite failure.
			return res, nil
		}
		if limit > e.opts.MaxDepth {
			res.Stats.Truncated = true
			return res, ErrDepth
		}
	}
}

// Solutions enumerates executions of goal from d, up to max of them
// (max <= 0 means all). Each solution carries the answer bindings and a
// clone of the final database. d itself is always rolled back.
func (e *Engine) Solutions(goal ast.Goal, d *db.DB, max int) ([]Solution, *Result, error) {
	if e.vetErr != nil {
		return nil, nil, e.vetErr
	}
	goal, err := e.prog.ResolveGoal(goal)
	if err != nil {
		return nil, nil, err
	}
	dv := newDeriv(e, d)
	defer dv.release()
	var sols []Solution
	dbMark := d.Mark()
	dv.explore(goal, 0, func() bool {
		sols = append(sols, Solution{
			Bindings: bindingsOf(goal, dv.env),
			Final:    d.Clone(),
		})
		return max <= 0 || len(sols) < max
	})
	d.Undo(dbMark)
	res := &Result{Success: len(sols) > 0}
	res.Stats = dv.stats()
	res.Stats.Successes = int64(len(sols))
	if dv.err != nil {
		res.Stats.Truncated = errors.Is(dv.err, ErrBudget) || errors.Is(dv.err, ErrDepth)
		return sols, res, dv.err
	}
	return sols, res, nil
}

// bindingsOf extracts the values of goal's named free variables from env.
func bindingsOf(goal ast.Goal, env *term.Env) map[string]term.Term {
	out := make(map[string]term.Term)
	for _, v := range ast.Vars(goal, nil) {
		if v.VarName() == "_" || v.VarName() == "" {
			continue
		}
		w := env.Walk(v)
		if !w.IsVar() {
			out[v.VarName()] = w
		}
	}
	return out
}
