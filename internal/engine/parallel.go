package engine

import (
	"errors"
	"sync"
	"sync/atomic"

	"repro/internal/ast"
	"repro/internal/db"
	"repro/internal/term"
)

// ProvePar is Prove with parallel search: the goal's first-level successor
// configurations (one per interleaving choice × rule choice × tuple choice
// available at the start) are materialized with cloned databases and
// explored concurrently by up to workers goroutines. The first successful
// worker wins; its final database is written back into d, which is
// otherwise rolled back.
//
// Parallel search pays off when top-level branching is wide and subtrees
// are expensive (large interleaving spaces); for narrow or cheap searches,
// Prove's single depth-first pass avoids the cloning overhead. Answers
// agree with Prove's up to the choice among successful executions. The
// step budget is shared across workers.
func (e *Engine) ProvePar(goal ast.Goal, d *db.DB, workers int) (*Result, error) {
	if e.vetErr != nil {
		return nil, e.vetErr
	}
	goal, err := e.prog.ResolveGoal(goal)
	if err != nil {
		return nil, err
	}
	if workers < 1 {
		workers = 1
	}

	sucs, err := e.collectSuccessors(goal, d)
	if err != nil {
		return nil, err
	}
	if len(sucs) == 0 {
		// No transitions: success iff the goal is already done.
		if _, done := goal.(ast.True); done {
			return &Result{Success: true, Bindings: map[string]term.Term{}}, nil
		}
		return &Result{}, nil
	}

	var sharedSteps atomic.Int64
	type outcome struct {
		suc     successor
		success bool
		bind    map[string]term.Term
		depth   int
		err     error
	}
	results := make(chan outcome, len(sucs))
	var cancel atomic.Bool
	sem := make(chan struct{}, workers)
	var wg sync.WaitGroup
	for _, st := range sucs {
		wg.Add(1)
		go func(st successor) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			if cancel.Load() {
				results <- outcome{suc: st}
				return
			}
			dv := newDeriv(e, st.d)
			dv.shared = &sharedSteps
			found := false
			dv.explore(st.tree, 1, func() bool {
				found = true
				return false
			})
			if dv.err != nil {
				results <- outcome{suc: st, err: dv.err, depth: dv.maxDepth}
				return
			}
			if found {
				cancel.Store(true)
				// Merge first-step bindings with the subtree's.
				bind := make(map[string]term.Term, len(st.bound))
				for k, v := range st.bound {
					bind[k] = v
				}
				for k, v := range bindingsOf(st.tree, dv.env) {
					bind[k] = v
				}
				results <- outcome{suc: st, success: true, bind: bind, depth: dv.maxDepth}
				return
			}
			results <- outcome{suc: st, depth: dv.maxDepth}
		}(st)
	}
	wg.Wait()
	close(results)

	agg := &Result{}
	var firstErr error
	for o := range results {
		if o.depth > agg.Stats.MaxDepth {
			agg.Stats.MaxDepth = o.depth
		}
		if o.err != nil && firstErr == nil {
			firstErr = o.err
		}
		if o.success && !agg.Success {
			agg.Success = true
			agg.Bindings = o.bind
			replaceDB(d, o.suc.d)
		}
	}
	agg.Stats.Steps = sharedSteps.Load()
	if agg.Success {
		return agg, nil
	}
	if firstErr != nil {
		agg.Stats.Truncated = errors.Is(firstErr, ErrBudget) || errors.Is(firstErr, ErrDepth)
		return agg, firstErr
	}
	return agg, nil
}

// successor is one first-level transition target: a residual tree with the
// step's bindings substituted in, the database after the step (cloned),
// and the bindings the step gave to the original goal's named variables.
type successor struct {
	tree  ast.Goal
	d     *db.DB
	bound map[string]term.Term
}

// collectSuccessors enumerates the single-step successors of goal from d
// using the engine's own transition relation: a depth-limited exploration
// whose cutoff hook captures each frontier configuration. d is rolled
// back afterwards.
func (e *Engine) collectSuccessors(goal ast.Goal, d *db.DB) ([]successor, error) {
	dv := newDeriv(e, d)
	var out []successor
	mark := d.Mark()
	dv.depthLimit = 1
	dv.frontier = func(res ast.Goal) {
		out = append(out, successor{
			tree:  resolveGoalEng(res, dv.env),
			d:     d.Clone(),
			bound: bindingsOf(goal, dv.env),
		})
	}
	// Initial depth 1: residuals arrive at depth 2 > depthLimit and hit
	// the cutoff hook. A goal that is already True emits instead.
	done := false
	dv.explore(goal, 1, func() bool { done = true; return true })
	d.Undo(mark)
	if dv.err != nil {
		return nil, dv.err
	}
	if done && len(out) == 0 {
		// Zero-step completion (goal was True): signal via empty frontier;
		// ProvePar handles it from the goal shape.
		return nil, nil
	}
	return out, nil
}

// resolveGoalEng substitutes current bindings into g, leaving unbound
// variables in place (the engine-side twin of the simulator's resolver).
func resolveGoalEng(g ast.Goal, env *term.Env) ast.Goal {
	switch g := g.(type) {
	case ast.True:
		return g
	case *ast.Lit:
		return &ast.Lit{Op: g.Op, Atom: env.ResolveAtom(g.Atom)}
	case *ast.Empty:
		return g
	case *ast.Builtin:
		return &ast.Builtin{Name: g.Name, Args: env.ResolveArgs(g.Args)}
	case *ast.Seq:
		goals := make([]ast.Goal, len(g.Goals))
		for i, sub := range g.Goals {
			goals[i] = resolveGoalEng(sub, env)
		}
		return &ast.Seq{Goals: goals}
	case *ast.Conc:
		goals := make([]ast.Goal, len(g.Goals))
		for i, sub := range g.Goals {
			goals[i] = resolveGoalEng(sub, env)
		}
		return &ast.Conc{Goals: goals}
	case *ast.Iso:
		return &ast.Iso{Body: resolveGoalEng(g.Body, env)}
	default:
		return g
	}
}

// replaceDB makes dst's contents equal src's, keeping dst's identity.
func replaceDB(dst, src *db.DB) {
	for _, ra := range dst.Relations() {
		for _, row := range dst.Tuples(ra.Pred, ra.Arity) {
			dst.Delete(ra.Pred, row)
		}
	}
	for _, ra := range src.Relations() {
		for _, row := range src.Tuples(ra.Pred, ra.Arity) {
			dst.Insert(ra.Pred, row)
		}
	}
	dst.ResetTrail()
}
