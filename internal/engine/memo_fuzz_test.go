package engine

import (
	"fmt"
	"strings"
	"testing"

	"repro/internal/ast"
	"repro/internal/parser"
	"repro/internal/term"
)

// FuzzMemoKey proves the memo-key encoding injective against the interned
// ground-term codes: two call literals get the same key if and only if
// they have the same predicate, arity, and argument pattern — pairwise
// equal ground terms (by term.Intern code) and the same first-occurrence
// variable structure. A collision here would let one call replay another
// call's answers; a spurious split only costs a duplicate fill.
func FuzzMemoKey(f *testing.F) {
	f.Add("p(a, b)", "p(a, b)")
	f.Add("p(X, Y)", "p(X, X)")
	f.Add("p(X, Y)", "p(A, B)")
	f.Add("reach(a, X)", "reach(X, a)")
	f.Add("p(a)", "pa()")
	f.Add("p(1, \"s\")", "p(\"1\", s)")
	f.Add("q(X, a, X, Y)", "q(Y, a, Y, X)")
	f.Add("p(12345678901234567890)", "p(12345678901234567891)")
	f.Fuzz(func(t *testing.T, srcA, srcB string) {
		ga, ok := fuzzCallLit(srcA)
		if !ok {
			return
		}
		gb, ok := fuzzCallLit(srcB)
		if !ok {
			return
		}
		e, d := memoSetup(t, "base(zzz). derived(X) :- base(X).", nil)
		if e.memo == nil {
			t.Fatal("memo not enabled")
		}
		dv := newDeriv(e, d)
		defer dv.release()
		keyA, _ := dv.appendMemoKey(nil, ga, nil)
		keyB, _ := dv.appendMemoKey(nil, gb, nil)
		same := string(keyA) == string(keyB)
		want := memoPattern(dv, ga) == memoPattern(dv, gb)
		if same != want {
			t.Fatalf("key equality %v but pattern equality %v:\n a: %s -> %x\n b: %s -> %x",
				same, want, srcA, keyA, srcB, keyB)
		}
	})
}

// fuzzCallLit parses src as a single call literal, rejecting inputs that
// are not a plain atom call.
func fuzzCallLit(src string) (*ast.Lit, bool) {
	g, _, err := parser.ParseGoal(src, 1000)
	if err != nil {
		return nil, false
	}
	lit, ok := g.(*ast.Lit)
	if !ok || lit.Op != ast.OpCall {
		return nil, false
	}
	return lit, true
}

// memoPattern renders the semantic identity a memo key must capture:
// predicate, arity, and per-argument either the interned ground code or
// the variable's first-occurrence index.
func memoPattern(dv *deriv, g *ast.Lit) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%d:%s", len(g.Atom.Args), g.Atom.Pred)
	var vars []term.Term
	for _, a := range g.Atom.Args {
		w := dv.env.Walk(a)
		if !w.IsVar() {
			fmt.Fprintf(&b, "|g%x", w.Code())
			continue
		}
		idx := -1
		for j := range vars {
			if vars[j].VarID() == w.VarID() {
				idx = j
				break
			}
		}
		if idx < 0 {
			idx = len(vars)
			vars = append(vars, w)
		}
		fmt.Fprintf(&b, "|v%d", idx)
	}
	return b.String()
}
