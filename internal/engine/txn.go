package engine

// Transactional entry point: running a goal against a forked database and
// extracting its write set, for callers (the transaction server) that
// manage commit and rollback themselves.

import (
	"errors"

	"repro/internal/ast"
	"repro/internal/db"
	"repro/internal/term"
)

// ProveDelta is Prove for transactional callers. It searches for a
// successful execution of goal from d exactly like Prove, but on success it
// leaves the witness execution's changes on d's undo trail — instead of
// committing them with ResetTrail — and returns them as an ordered write
// set. The caller owns the trail: Undo back to its own mark to abort, or
// ResetTrail to commit. On failure or error, d is rolled back to the state
// at entry (changes from earlier ProveDelta calls on the same trail are
// untouched).
func (e *Engine) ProveDelta(goal ast.Goal, d *db.DB) (*Result, []db.Op, error) {
	if e.vetErr != nil {
		return nil, nil, e.vetErr
	}
	goal, err := e.prog.ResolveGoal(goal)
	if err != nil {
		return nil, nil, err
	}
	dv := newDeriv(e, d)
	res := &Result{}
	dbMark := d.Mark()
	found := false
	cont := dv.explore(goal, 0, func() bool {
		found = true
		return false // stop at first success, keeping the state
	})
	res.Stats = dv.stats()
	if dv.err != nil {
		d.Undo(dbMark)
		res.Stats.Truncated = errors.Is(dv.err, ErrBudget) || errors.Is(dv.err, ErrDepth)
		return res, nil, dv.err
	}
	if cont || !found {
		d.Undo(dbMark)
		return res, nil, nil
	}
	res.Success = true
	res.Stats.Successes = 1
	res.Bindings = bindingsOf(goal, dv.env)
	if e.opts.Trace {
		res.Trace = append([]TraceEntry(nil), dv.trace...)
		res.Spans = dv.buildSpans(goal.String(), res.Stats)
		if e.opts.SpanSink != nil {
			e.opts.SpanSink.Emit(res.Spans)
		}
	}
	return res, d.DeltaSince(dbMark), nil
}

// Enumerate runs emit once per successful execution of goal with that
// execution's answer bindings, up to max of them (max <= 0 means all), and
// rolls d back afterwards. Unlike Solutions it does not clone final
// database states, so it is the right shape for query serving.
func (e *Engine) Enumerate(goal ast.Goal, d *db.DB, max int, emit func(map[string]term.Term) bool) (*Result, error) {
	if e.vetErr != nil {
		return nil, e.vetErr
	}
	goal, err := e.prog.ResolveGoal(goal)
	if err != nil {
		return nil, err
	}
	dv := newDeriv(e, d)
	dbMark := d.Mark()
	n := 0
	dv.explore(goal, 0, func() bool {
		n++
		if !emit(bindingsOf(goal, dv.env)) {
			return false
		}
		return max <= 0 || n < max
	})
	d.Undo(dbMark)
	res := &Result{Success: n > 0}
	res.Stats = dv.stats()
	res.Stats.Successes = int64(n)
	if dv.err != nil {
		res.Stats.Truncated = errors.Is(dv.err, ErrBudget) || errors.Is(dv.err, ErrDepth)
		return res, dv.err
	}
	return res, nil
}
