package engine

import (
	"errors"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/db"
	"repro/internal/parser"
	"repro/internal/term"
)

func TestProveParBasics(t *testing.T) {
	prog := parser.MustParse(`
		account(alice, 100).
		t :- account(alice, B), del.account(alice, B), sub(B, 30, C), ins.account(alice, C).
	`)
	g := parser.MustParseGoal("t", prog.VarHigh)
	d, _ := db.FromFacts(prog.Facts)
	res, err := NewDefault(prog).ProvePar(g, d, 4)
	if err != nil || !res.Success {
		t.Fatal(err, res)
	}
	if !d.Contains("account", []term.Term{term.NewSym("alice"), term.NewInt(70)}) {
		t.Fatalf("final db wrong:\n%s", d)
	}
}

func TestProveParFailureRollsBack(t *testing.T) {
	prog := parser.MustParse(`
		t :- ins.a, nosuch(x).
		t :- ins.b, nosuch(y).
	`)
	g := parser.MustParseGoal("t", prog.VarHigh)
	d := db.New()
	d.Insert("seed", nil)
	d.ResetTrail()
	res, err := NewDefault(prog).ProvePar(g, d, 4)
	if err != nil {
		t.Fatal(err)
	}
	if res.Success {
		t.Fatal("false success")
	}
	if d.Size() != 1 || !d.Contains("seed", nil) {
		t.Fatalf("db not restored:\n%s", d)
	}
}

func TestProveParBindings(t *testing.T) {
	// X bound at the FIRST step (query), and Y bound deeper: both must
	// appear in the answer.
	prog := parser.MustParse(`
		p(a). q(a, b1).
	`)
	g := parser.MustParseGoal("p(X), q(X, Y), ins.out(X, Y)", prog.VarHigh)
	d, _ := db.FromFacts(prog.Facts)
	res, err := NewDefault(prog).ProvePar(g, d, 2)
	if err != nil || !res.Success {
		t.Fatal(err, res)
	}
	if !res.Bindings["X"].Equal(term.NewSym("a")) || !res.Bindings["Y"].Equal(term.NewSym("b1")) {
		t.Fatalf("bindings = %v", res.Bindings)
	}
}

func TestProveParTrivialGoals(t *testing.T) {
	prog := parser.MustParse(``)
	d := db.New()
	res, err := NewDefault(prog).ProvePar(parser.MustParseGoal("true", prog.VarHigh), d, 2)
	if err != nil || !res.Success {
		t.Fatal("true failed under ProvePar")
	}
	res2, err := NewDefault(prog).ProvePar(parser.MustParseGoal("nosuch(x)", prog.VarHigh), d, 2)
	if err != nil || res2.Success {
		t.Fatal("impossible goal succeeded")
	}
}

func TestProveParIsoFirstStep(t *testing.T) {
	// The first step is an iso macro-step; successors must be collected
	// after complete body executions, not inside them.
	prog := parser.MustParse(`
		pickone :- item(X), del.item(X), ins.got(X).
		item(a). item(b).
	`)
	g := parser.MustParseGoal("iso(pickone), ins.done", prog.VarHigh)
	d, _ := db.FromFacts(prog.Facts)
	res, err := NewDefault(prog).ProvePar(g, d, 4)
	if err != nil || !res.Success {
		t.Fatal(err, res)
	}
	if !d.Contains("done", nil) || d.Count("got", 1) != 1 {
		t.Fatalf("final db wrong:\n%s", d)
	}
}

func TestProveParSharedBudget(t *testing.T) {
	prog := parser.MustParse(`
		spin :- ins.tok, del.tok, spin.
		both :- spin | spin.
	`)
	g := parser.MustParseGoal("both", prog.VarHigh)
	d := db.New()
	e := New(prog, Options{MaxSteps: 2_000, MaxDepth: 1_000_000})
	_, err := e.ProvePar(g, d, 4)
	if !errors.Is(err, ErrBudget) {
		t.Fatalf("err = %v, want shared ErrBudget", err)
	}
}

// Property: ProvePar agrees with Prove on success/failure for random
// generated programs (same generator as the soak tests).
func TestProveParAgreesWithProve(t *testing.T) {
	if testing.Short() {
		t.Skip("soak-adjacent")
	}
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		src := genProgram(r)
		prog, err := parser.Parse(src)
		if err != nil {
			return false
		}
		g, _, err := parser.ParseGoal("r0", prog.VarHigh)
		if err != nil {
			return false
		}
		opts := Options{MaxSteps: 25_000, MaxDepth: 4_000, LoopCheck: true, Table: true}

		d1, _ := db.FromFacts(prog.Facts)
		r1, err1 := New(prog, opts).Prove(g, d1)
		d2, _ := db.FromFacts(prog.Facts)
		r2, err2 := New(prog, opts).ProvePar(g, d2, 4)

		if err1 != nil || err2 != nil {
			// Budget exhaustion can differ between strategies (work is
			// split differently) — only compare clean completions.
			return true
		}
		if r1.Success != r2.Success {
			t.Logf("seed %d: Prove=%v ProvePar=%v\n%s", seed, r1.Success, r2.Success, src)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40, Rand: rand.New(rand.NewSource(4))}); err != nil {
		t.Fatal(err)
	}
}
