package engine

import (
	"container/list"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"

	"repro/internal/analysis"
	"repro/internal/ast"
	"repro/internal/term"
)

// Tabled evaluation: snapshot-versioned memo tables for derived predicates.
//
// A call to a tabling-eligible derived predicate (update-free,
// hypothetical-free, non-'|' recursion — the certificate
// internal/analysis/plan.go computes) is a pure query over the current
// database state: its answer multiset depends only on the program and on
// the contents of the predicate's base-relation support set. Such a call
// can be answered from a memo table instead of re-running proof search.
//
// The memo key is (program, predicate, call pattern): the 128-bit program
// content hash — one MemoStore may serve sessions that loaded different
// programs — the length-prefixed predicate name, and one 8-byte code per
// argument: ground arguments use term.Code (low-3-bit tags 1..4), free
// arguments use memoTagVar (6) with the variable's first-occurrence index
// among the call's distinct free variables, so p(X,X) and p(X,Y) key
// differently. FuzzMemoKey proves this encoding injective.
//
// Invalidation is snapshot-versioned with no protocol: each entry stores
// the 128-bit fold of the per-relation content fingerprints of the
// predicate's support set (PredPlan.Support) at fill time. A lookup
// recomputes the fold against its own database — session snapshot
// replicas, ASOF-pinned reads, and the live store each fold their own
// relation fingerprints — and a mismatch is a miss that drops the stale
// entry. Relation fingerprints are pure functions of tuple sets
// (db.RelFingerprint), so replicas holding the same data share entries and
// rolling a mutation back restores hits.
//
// An answer is the projection of one successful execution onto the call's
// distinct free variables: per variable a ground witness term, an alias to
// an earlier variable (the body unified two call variables without
// grounding them), or "left unbound". Duplicate answers are preserved —
// replay emits one success per recorded execution, keeping the answer
// multiset identical to untabled search. The first call under a given key
// fills the table by exhausting the sub-search, then replays; repeat calls
// replay directly.
//
// The memo path is bypassed wherever its semantics would not hold:
// under un-isolated '|' (concTaint — a sibling's update between two
// replayed answers would be invisible), under iterative deepening
// (depthLimit — a cutoff makes the fill non-exhaustive), and under
// parallel search (shared budget / frontier collector). A same-key
// re-entrant call during a fill (recursive tabled predicate) falls through
// to ordinary rule dispatch, which records exactly the untabled answers.
// With Options.Memo nil the prove hot path pays a single nil check.

// memoTagVar is the low-3-bit tag of a free-variable slot in a memo key.
// term.Code uses tags 1..4 for ground terms and never 6, so variable slots
// cannot collide with ground arguments.
const memoTagVar uint64 = 6

// Alias markers in a memo answer slot.
const (
	memoGround  int32 = -1 // slot holds a ground witness term
	memoUnbound int32 = -2 // variable stayed unbound in this answer
)

// memoSlot is one projected variable of one answer: a ground term
// (alias == memoGround), an alias to an earlier distinct variable of the
// same call (alias >= 0), or nothing (memoUnbound).
type memoSlot struct {
	t     term.Term
	alias int32
}

// memoSlotBytes approximates the retained size of one slot (term value +
// slice overhead share) for the store's byte accounting.
const memoSlotBytes = 32

// MemoOptions configure the snapshot-versioned memo tables
// (Options.Memo). The zero Mode is "auto".
type MemoOptions struct {
	// Mode selects the tabled predicates among the tabling-eligible ones:
	// "auto" (top-K by observed profile cost), "all", "none", or a
	// comma-separated list of predicate names ("hot" or "hot/1").
	Mode string
	// TopK bounds auto mode's selection (0 means DefaultMemoTopK). With no
	// profile observations every eligible predicate is tabled.
	TopK int
	// MaxMB bounds the store's memory (0 means DefaultMemoMaxMB); least
	// recently used entries are evicted beyond it.
	MaxMB int
	// Store, when non-nil, is the (shared) memo store to use — the server
	// hands every session the same store so replicas reuse each other's
	// fills. nil gives the engine a private store.
	Store *MemoStore
	// Profile feeds auto mode: the absorbed per-predicate prover profile
	// (server PROFILE / engine ProfileSnapshot). Selection cost is
	// TimeUs × Calls.
	Profile map[string]PredProfile
}

// Memo defaults.
const (
	DefaultMemoTopK  = 8
	DefaultMemoMaxMB = 64
)

// MemoStats is a point-in-time snapshot of a MemoStore.
type MemoStats struct {
	Hits          int64 `json:"hits"`
	Misses        int64 `json:"misses"`
	Invalidations int64 `json:"invalidations"`
	Evictions     int64 `json:"evictions"`
	Bytes         int64 `json:"bytes"`
	Entries       int64 `json:"entries"`
	// Preds holds per-predicate lookup stats, hottest (most hits) first.
	Preds []MemoPredStats `json:"preds,omitempty"`
}

// MemoPredStats is one tabled predicate's lookup record.
type MemoPredStats struct {
	Pred   string `json:"pred"`
	Hits   int64  `json:"hits"`
	Misses int64  `json:"misses"`
}

// MemoStore is an LRU-bounded, mutex-guarded memo table shared across
// engines (and goroutines): the server hands one store to every session so
// snapshot replicas of the same data reuse each other's fills. Entries are
// immutable after insertion; replay reads them outside the lock.
type MemoStore struct {
	mu       sync.Mutex
	entries  map[string]*memoEntry
	lru      *list.List // front = most recently used
	bytes    int64
	maxBytes int64
	byPred   map[string]*memoPredCounters

	hits          atomic.Int64
	misses        atomic.Int64
	invalidations atomic.Int64
	evictions     atomic.Int64
}

type memoPredCounters struct {
	hits   int64
	misses int64
}

// memoEntry is one cached call: the support-set fingerprint it was filled
// under, the answer count, and the flat count×nvars slot matrix.
type memoEntry struct {
	key     string
	pred    string
	elem    *list.Element
	fp      [2]uint64
	nvars   int
	count   int
	answers []memoSlot
	bytes   int64
}

// NewMemoStore returns an empty store bounded to maxMB megabytes
// (0 means DefaultMemoMaxMB).
func NewMemoStore(maxMB int) *MemoStore {
	if maxMB <= 0 {
		maxMB = DefaultMemoMaxMB
	}
	return &MemoStore{
		entries:  make(map[string]*memoEntry),
		lru:      list.New(),
		maxBytes: int64(maxMB) << 20,
		byPred:   make(map[string]*memoPredCounters),
	}
}

// Counters returns the store's lifetime lookup counters without building a
// full Snapshot — cheap enough for a metrics scrape path.
func (s *MemoStore) Counters() (hits, misses, invalidations, evictions int64) {
	return s.hits.Load(), s.misses.Load(), s.invalidations.Load(), s.evictions.Load()
}

// Usage returns the store's current footprint: answer bytes held and the
// number of cached call entries.
func (s *MemoStore) Usage() (bytes int64, entries int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.bytes, len(s.entries)
}

// predCounters returns the per-predicate cell, creating it. Callers hold mu.
func (s *MemoStore) predCounters(pred string) *memoPredCounters {
	pc := s.byPred[pred]
	if pc == nil {
		pc = &memoPredCounters{}
		s.byPred[pred] = pc
	}
	return pc
}

// lookup resolves key (still in its scratch buffer — the conversion in the
// map index does not allocate) against the caller's support fingerprint.
// A fingerprint mismatch drops the stale entry and reports invalidated.
func (s *MemoStore) lookup(key []byte, fp [2]uint64, pred string) (e *memoEntry, ok, invalidated bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	e = s.entries[string(key)]
	if e == nil {
		s.misses.Add(1)
		s.predCounters(pred).misses++
		return nil, false, false
	}
	if e.fp != fp {
		s.drop(e)
		s.invalidations.Add(1)
		s.misses.Add(1)
		s.predCounters(pred).misses++
		return nil, false, true
	}
	s.lru.MoveToFront(e.elem)
	s.hits.Add(1)
	s.predCounters(pred).hits++
	return e, true, false
}

// insert stores a freshly filled entry, evicting least-recently-used
// entries beyond the byte bound. An entry already present under key (a
// concurrent session filled the same call first) is replaced.
func (s *MemoStore) insert(key, pred string, fp [2]uint64, nvars, count int, answers []memoSlot) {
	e := &memoEntry{
		key:     key,
		pred:    pred,
		fp:      fp,
		nvars:   nvars,
		count:   count,
		answers: answers,
		bytes:   int64(len(key)) + int64(len(answers))*memoSlotBytes + 128,
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if old := s.entries[key]; old != nil {
		s.drop(old)
	}
	e.elem = s.lru.PushFront(e)
	s.entries[key] = e
	s.bytes += e.bytes
	for s.bytes > s.maxBytes && s.lru.Len() > 1 {
		victim := s.lru.Back().Value.(*memoEntry)
		s.drop(victim)
		s.evictions.Add(1)
	}
}

// drop unlinks e. Callers hold mu.
func (s *MemoStore) drop(e *memoEntry) {
	delete(s.entries, e.key)
	s.lru.Remove(e.elem)
	s.bytes -= e.bytes
}

// Snapshot returns the store's cumulative counters and per-predicate
// lookup stats, hottest first.
func (s *MemoStore) Snapshot() MemoStats {
	st := MemoStats{
		Hits:          s.hits.Load(),
		Misses:        s.misses.Load(),
		Invalidations: s.invalidations.Load(),
		Evictions:     s.evictions.Load(),
	}
	s.mu.Lock()
	st.Bytes = s.bytes
	st.Entries = int64(len(s.entries))
	for pred, pc := range s.byPred {
		st.Preds = append(st.Preds, MemoPredStats{Pred: pred, Hits: pc.hits, Misses: pc.misses})
	}
	s.mu.Unlock()
	sort.Slice(st.Preds, func(i, j int) bool {
		if st.Preds[i].Hits != st.Preds[j].Hits {
			return st.Preds[i].Hits > st.Preds[j].Hits
		}
		return st.Preds[i].Pred < st.Preds[j].Pred
	})
	return st
}

// supportRef is one parsed entry of a predicate's support set: a relation
// read ("name/arity") or a predicate-level read (bare "name", from
// empty.p, which observes every arity).
type supportRef struct {
	pred      string
	arity     int
	predLevel bool
}

// memoPred is one tabled predicate's compiled gating data.
type memoPred struct {
	name    string // "name/arity", the stats label
	support []supportRef
}

// engineMemo is the per-engine memo configuration: the shared store, the
// program's content hash, and the selected predicates.
type engineMemo struct {
	store          *MemoStore
	progLo, progHi uint64
	preds          map[enginePredArity]*memoPred
}

// parseSupportRef splits a PredPlan.Support entry.
func parseSupportRef(entry string) supportRef {
	if i := strings.LastIndexByte(entry, '/'); i >= 0 {
		if n, err := strconv.Atoi(entry[i+1:]); err == nil {
			return supportRef{pred: entry[:i], arity: n}
		}
	}
	return supportRef{pred: entry, predLevel: true}
}

// splitPredArity splits a "name/arity" certificate label.
func splitPredArity(s string) (string, int, bool) {
	i := strings.LastIndexByte(s, '/')
	if i < 0 {
		return "", 0, false
	}
	n, err := strconv.Atoi(s[i+1:])
	if err != nil {
		return "", 0, false
	}
	return s[:i], n, true
}

// progHash fingerprints the program content with the engine's usual
// dual-FNV streams. Load-time only.
func progHash(prog *ast.Program) (uint64, uint64) {
	const primeLo, primeHi = 1099511628211, 0xff51afd7ed558ccd
	lo := uint64(14695981039346656037)
	hi := uint64(0x9e3779b97f4a7c15)
	mix := func(s string) {
		for i := 0; i < len(s); i++ {
			lo = (lo ^ uint64(s[i])) * primeLo
			hi = (hi ^ uint64(s[i])) * primeHi
		}
		lo = (lo ^ 0x1f) * primeLo
		hi = (hi ^ 0x1f) * primeHi
	}
	for _, r := range prog.Rules {
		mix(r.Head.String())
		mix(r.Body.String())
	}
	return lo, hi
}

// newEngineMemo compiles the memo configuration: select predicates per
// opts.Mode among the report's tabling-eligible certificates, parse their
// support sets, and bind the store. Returns nil when nothing is tabled.
func newEngineMemo(prog *ast.Program, rep *analysis.PlanReport, opts *MemoOptions) *engineMemo {
	mode := strings.TrimSpace(opts.Mode)
	if mode == "" {
		mode = "auto"
	}
	if mode == "none" {
		return nil
	}
	var eligible []analysis.PredPlan
	for _, pp := range rep.Predicates {
		if pp.TablingEligible {
			eligible = append(eligible, pp)
		}
	}
	var selected []analysis.PredPlan
	switch mode {
	case "all":
		selected = eligible
	case "auto":
		topK := opts.TopK
		if topK <= 0 {
			topK = DefaultMemoTopK
		}
		score := func(pp analysis.PredPlan) int64 {
			name, _, _ := splitPredArity(pp.Pred)
			pf := opts.Profile[name]
			return pf.TimeUs * pf.Calls
		}
		anyScore := false
		for _, pp := range eligible {
			if score(pp) > 0 {
				anyScore = true
				break
			}
		}
		if !anyScore {
			// Cold start: no observations yet, table everything eligible.
			selected = eligible
			break
		}
		ranked := append([]analysis.PredPlan(nil), eligible...)
		sort.SliceStable(ranked, func(i, j int) bool { return score(ranked[i]) > score(ranked[j]) })
		if len(ranked) > topK {
			ranked = ranked[:topK]
		}
		for _, pp := range ranked {
			if score(pp) > 0 {
				selected = append(selected, pp)
			}
		}
	default: // comma-separated predicate names
		want := make(map[string]bool)
		for _, name := range strings.Split(mode, ",") {
			if name = strings.TrimSpace(name); name != "" {
				want[name] = true
			}
		}
		for _, pp := range eligible {
			name, _, _ := splitPredArity(pp.Pred)
			if want[pp.Pred] || want[name] {
				selected = append(selected, pp)
			}
		}
	}
	if len(selected) == 0 {
		return nil
	}
	em := &engineMemo{preds: make(map[enginePredArity]*memoPred, len(selected))}
	em.progLo, em.progHi = progHash(prog)
	for _, pp := range selected {
		name, arity, ok := splitPredArity(pp.Pred)
		if !ok {
			continue
		}
		mp := &memoPred{name: pp.Pred}
		for _, entry := range pp.Support {
			mp.support = append(mp.support, parseSupportRef(entry))
		}
		em.preds[enginePredArity{pred: name, arity: arity}] = mp
	}
	em.store = opts.Store
	if em.store == nil {
		em.store = NewMemoStore(opts.MaxMB)
	}
	return em
}

// MemoStats returns a snapshot of the engine's memo store, or nil when
// tabling is off (or nothing was selected).
func (e *Engine) MemoStats() *MemoStats {
	if e.memo == nil {
		return nil
	}
	st := e.memo.store.Snapshot()
	return &st
}

// MemoTabled returns the tabled predicates ("name/arity", sorted), or nil
// when tabling is off.
func (e *Engine) MemoTabled() []string {
	if e.memo == nil {
		return nil
	}
	out := make([]string, 0, len(e.memo.preds))
	for _, mp := range e.memo.preds {
		out = append(out, mp.name)
	}
	sort.Strings(out)
	return out
}

// memoFingerprint folds the predicate's support-set relation fingerprints
// against the search's database. Relation fingerprints are pure functions
// of tuple sets, so replicas with equal data produce equal folds. The
// support list is sorted at plan time, making the sequential fold
// deterministic.
func (dv *deriv) memoFingerprint(mp *memoPred) [2]uint64 {
	const primeLo, primeHi = 1099511628211, 0xff51afd7ed558ccd
	lo := uint64(14695981039346656037)
	hi := uint64(0x9e3779b97f4a7c15)
	for _, ref := range mp.support {
		var f [2]uint64
		if ref.predLevel {
			f = dv.d.PredFingerprint(ref.pred)
		} else {
			f = dv.d.RelFingerprint(ref.pred, ref.arity)
		}
		lo = (lo ^ f[0]) * primeLo
		hi = (hi ^ f[1]) * primeHi
	}
	return [2]uint64{lo, hi}
}

// appendMemoKey encodes the call pattern of g into dst and returns the
// extended buffer plus the call's distinct free variables in
// first-occurrence order. The encoding is injective: 16 bytes of program
// hash, the length-prefixed predicate name, then one 8-byte code per
// argument (ground term code, or variable index tagged memoTagVar).
func (dv *deriv) appendMemoKey(dst []byte, g *ast.Lit, vars []term.Term) ([]byte, []term.Term) {
	em := dv.e.memo
	dst = term.AppendCode(dst, em.progLo)
	dst = term.AppendCode(dst, em.progHi)
	dst = strconv.AppendInt(dst, int64(len(g.Atom.Pred)), 10)
	dst = append(dst, ':')
	dst = append(dst, g.Atom.Pred...)
	for _, t := range g.Atom.Args {
		w := dv.env.Walk(t)
		if !w.IsVar() {
			dst = term.AppendCode(dst, w.Code())
			continue
		}
		idx := -1
		for j := range vars {
			if vars[j].VarID() == w.VarID() {
				idx = j
				break
			}
		}
		if idx < 0 {
			idx = len(vars)
			vars = append(vars, w)
		}
		dst = term.AppendCode(dst, uint64(idx)<<3|memoTagVar)
	}
	return dst, vars
}

// memoStep serves an OpCall step from the memo table. handled reports
// whether the memo path took the step (the predicate is tabled and no
// same-key fill is in flight); when handled, cont is the usual
// cut-propagation result. The first call under a key fills the table by
// exhausting the sub-search, then both paths replay the recorded answers.
func (dv *deriv) memoStep(g *ast.Lit, rebuild func(ast.Goal) ast.Goal, depth int, emit func() bool) (handled, cont bool) {
	mp := dv.e.memo.preds[enginePredArity{pred: g.Atom.Pred, arity: len(g.Atom.Args)}]
	if mp == nil {
		return false, false
	}
	// Key and distinct-variable scratch are per-step locals: a nested
	// tabled call during fill or replay runs its own memoStep.
	var vars []term.Term
	buf, vars := dv.appendMemoKey(dv.memoBuf[:0], g, vars)
	dv.memoBuf = buf[:0]
	if dv.memoFlight[string(buf)] {
		// Re-entrant call on the same key (recursive tabled predicate
		// mid-fill): fall through to ordinary rule dispatch, which
		// explores exactly the untabled semantics.
		return false, false
	}
	fp := dv.memoFingerprint(mp)
	entry, ok, invalidated := dv.e.memo.store.lookup(buf, fp, mp.name)
	if invalidated {
		dv.memoInvalid++
	}
	var memoAnn uint8
	if ok {
		dv.memoHits++
		memoAnn = MemoHit
		if dv.e.opts.Profile {
			dv.noteCall(g.Atom.Pred, 0)
		}
	} else {
		key := string(buf)
		dv.memoMisses++
		memoAnn = MemoMiss
		if dv.memoFlight == nil {
			dv.memoFlight = make(map[string]bool)
		}
		dv.memoFlight[key] = true
		// The fill is an independent, exhaustive sub-search of the bare
		// call: it must not be pruned by the enclosing derivation's
		// path-cycle entries (the outer explore of a bare-call goal holds
		// this very configuration, and pruning here would cache an empty
		// answer set). Give it a fresh path; the failure table stays
		// shared — its entries are context-free.
		savedPath := dv.path
		if savedPath != nil {
			dv.path = make(map[ckey]bool)
		}
		var answers []memoSlot
		count := 0
		fillCont := dv.explore(g, depth+1, func() bool {
			for i, v := range vars {
				w := dv.env.Walk(v)
				if !w.IsVar() {
					answers = append(answers, memoSlot{t: w, alias: memoGround})
					continue
				}
				alias := memoUnbound
				for j := 0; j < i; j++ {
					if pw := dv.env.Walk(vars[j]); pw.IsVar() && pw.VarID() == w.VarID() {
						alias = int32(j)
						break
					}
				}
				answers = append(answers, memoSlot{alias: alias})
			}
			count++
			return true // collect every execution, then backtrack
		})
		dv.path = savedPath
		delete(dv.memoFlight, key)
		if !fillCont {
			// The sub-search errored (budget, depth, runtime fault): no
			// entry is stored and the error propagates.
			return true, false
		}
		dv.e.memo.store.insert(key, mp.name, fp, len(vars), count, answers)
		entry = &memoEntry{nvars: len(vars), count: count, answers: answers}
	}
	if entry.nvars != len(vars) {
		// Defensive: an injective key cannot disagree on the variable
		// count; treat as unhandled rather than replay garbage.
		return false, false
	}
	// One budget charge for the call step itself (so a replayed failure
	// still consumes budget, matching the untabled call's accounting),
	// plus one per replayed answer.
	if !dv.budget() {
		return true, false
	}
	stride := entry.nvars
	for a := 0; a < entry.count; a++ {
		if !dv.budget() {
			return true, false
		}
		envMark := dv.env.Mark()
		okBind := true
		base := a * stride
		for i := 0; i < stride && okBind; i++ {
			slot := entry.answers[base+i]
			switch {
			case slot.alias == memoGround:
				okBind = dv.env.Unify(vars[i], slot.t)
			case slot.alias >= 0:
				okBind = dv.env.Unify(vars[i], vars[slot.alias])
			}
		}
		if !okBind {
			dv.env.Undo(envMark)
			continue
		}
		dv.pushTrace(TraceEntry{Op: TraceCall, Atom: dv.env.ResolveAtom(g.Atom), Memo: memoAnn})
		c := dv.explore(rebuild(ast.True{}), depth+1, emit)
		dv.popTrace(c)
		if !c {
			return true, false
		}
		dv.env.Undo(envMark)
	}
	return true, true
}
