package engine

import (
	"strings"
	"testing"

	"repro/internal/db"
	"repro/internal/obs"
	"repro/internal/parser"
)

// proveSpans proves goal with tracing on and returns the span tree.
func proveSpans(t *testing.T, src, goal string) *obs.Span {
	t.Helper()
	prog := parser.MustParse(src)
	g := parser.MustParseGoal(goal, prog.VarHigh)
	d, err := db.FromFacts(prog.Facts)
	if err != nil {
		t.Fatal(err)
	}
	opts := DefaultOptions()
	opts.Trace = true
	res, perr := New(prog, opts).Prove(g, d)
	if perr != nil || !res.Success {
		t.Fatalf("prove %q: err=%v success=%v", goal, perr, res != nil && res.Success)
	}
	if res.Spans == nil {
		t.Fatalf("no spans for traced proof of %q", goal)
	}
	return res.Spans
}

// kinds returns the Kind sequence of the direct children of s.
func kinds(s *obs.Span) []string {
	out := make([]string, len(s.Children))
	for i, c := range s.Children {
		out[i] = c.Kind
	}
	return out
}

func TestSpansFlatSequence(t *testing.T) {
	sp := proveSpans(t, `p(a). t :- p(X), ins.q(X).`, `t`)
	if sp.Kind != "txn" || sp.Label != "t" {
		t.Fatalf("root = %s %s", sp.Kind, sp.Label)
	}
	// call t, query p(a), ins q(a) — all direct children, no branch spans.
	got := kinds(sp)
	want := []string{"call", "query", "ins"}
	if strings.Join(got, " ") != strings.Join(want, " ") {
		t.Fatalf("children kinds = %v, want %v\n%s", got, want, sp.Tree())
	}
	if sp.Reads != 1 || sp.Writes != 1 || sp.Calls != 1 || sp.Ops != 3 {
		t.Fatalf("aggregates wrong: %+v", *sp)
	}
	if sp.Steps == 0 {
		t.Fatalf("root span should carry step count")
	}
}

func TestSpansConcurrentBranches(t *testing.T) {
	// Two concurrent branches, two ops each. Every op must land in its own
	// branch span regardless of the interleaving the search finds — in
	// particular after one branch finishes and the composition collapses to
	// the survivor.
	sp := proveSpans(t, `p(a). q(b).`, `(p(X), ins.r(X)) | (q(Y), ins.s(Y))`)
	if len(sp.Children) != 2 {
		t.Fatalf("want 2 branch children:\n%s", sp.Tree())
	}
	for _, c := range sp.Children {
		if c.Kind != "branch" {
			t.Fatalf("child kind = %s, want branch\n%s", c.Kind, sp.Tree())
		}
		if c.Ops != 2 || c.Reads != 1 || c.Writes != 1 {
			t.Fatalf("branch %s aggregates = %+v, want 1 read + 1 write", c.Label, *c)
		}
	}
	// Branch contents must not be mixed up.
	b0, b1 := sp.Children[0], sp.Children[1]
	if b0.Children[0].Label != "p(a)" || b0.Children[1].Label != "ins.r(a)" {
		t.Fatalf("branch 0 holds wrong ops:\n%s", sp.Tree())
	}
	if b1.Children[0].Label != "q(b)" || b1.Children[1].Label != "ins.s(b)" {
		t.Fatalf("branch 1 holds wrong ops:\n%s", sp.Tree())
	}
}

func TestSpansNestedConcUnderSeq(t *testing.T) {
	// A concurrent composition nested inside a sequential branch: the inner
	// branches must nest under the outer branch's span.
	sp := proveSpans(t, `a. b. c. z.`,
		`(a, (b | c)) | z`)
	if len(sp.Children) != 2 {
		t.Fatalf("want 2 outer branches:\n%s", sp.Tree())
	}
	outer := sp.Children[0]
	if outer.Children[0].Label != "a" {
		t.Fatalf("outer branch should start with call a:\n%s", sp.Tree())
	}
	var innerBranches int
	for _, c := range outer.Children {
		if c.Kind == "branch" {
			innerBranches++
		}
	}
	if innerBranches != 2 {
		t.Fatalf("want 2 inner branches nested under outer branch, got %d:\n%s",
			innerBranches, sp.Tree())
	}
}

func TestSpansCallExpandingToConc(t *testing.T) {
	// A call whose body is a concurrent composition: NewConc flattens the
	// body's branches into the enclosing composition, so their spans must
	// appear as children of the calling branch (parentOf links).
	sp := proveSpans(t, `t :- ins.x(1) | ins.y(2). z.`, `t | z`)
	var tBranch *obs.Span
	for _, c := range sp.Children {
		if c.Kind == "branch" && len(c.Children) > 0 && c.Children[0].Label == "t" {
			tBranch = c
		}
	}
	if tBranch == nil {
		t.Fatalf("no branch holding call t:\n%s", sp.Tree())
	}
	var sub int
	for _, c := range tBranch.Children {
		if c.Kind == "branch" {
			sub++
			if c.Ops != 1 || c.Writes != 1 {
				t.Fatalf("expanded sub-branch should hold one write:\n%s", sp.Tree())
			}
		}
	}
	if sub != 2 {
		t.Fatalf("call expansion should nest 2 sub-branches under the calling branch, got %d:\n%s",
			sub, sp.Tree())
	}
}

func TestSpansIsoNesting(t *testing.T) {
	// Two sequential iso blocks: two iso spans under the root, each holding
	// its body's ops; iso step attribution is positive.
	sp := proveSpans(t, `acct(a, 100).`,
		`iso(acct(a, B), del.acct(a, B), ins.acct(a, 90)), iso(empty.none)`)
	var isos []*obs.Span
	for _, c := range sp.Children {
		if c.Kind == "iso" {
			isos = append(isos, c)
		}
	}
	if len(isos) != 2 {
		t.Fatalf("want 2 iso spans, got %d:\n%s", len(isos), sp.Tree())
	}
	if isos[0].Ops != 3 || isos[0].Writes != 2 || isos[0].Reads != 1 {
		t.Fatalf("first iso aggregates wrong: %+v\n%s", *isos[0], sp.Tree())
	}
	if isos[0].Steps <= 0 {
		t.Fatalf("iso span should attribute steps, got %d", isos[0].Steps)
	}
	if isos[1].Ops != 1 || isos[1].Reads != 1 {
		t.Fatalf("second iso aggregates wrong: %+v", *isos[1])
	}
}

func TestSpansIsoInsideConcurrentBranch(t *testing.T) {
	// iso sub-transactions racing in concurrent branches (the paper's
	// genome-lab shape): each branch span holds exactly one iso span, and
	// the iso bodies' ops stay inside their iso.
	sp := proveSpans(t, `v(1). w(2).`,
		`iso(v(X), ins.sv(X)) | iso(w(Y), ins.sw(Y))`)
	if len(sp.Children) != 2 {
		t.Fatalf("want 2 branches:\n%s", sp.Tree())
	}
	for _, b := range sp.Children {
		if b.Kind != "branch" || len(b.Children) != 1 || b.Children[0].Kind != "iso" {
			t.Fatalf("each branch must hold exactly one iso span:\n%s", sp.Tree())
		}
		iso := b.Children[0]
		if iso.Ops != 2 || iso.Reads != 1 || iso.Writes != 1 {
			t.Fatalf("iso aggregates wrong: %+v\n%s", *iso, sp.Tree())
		}
	}
}

func TestSpansNilWhenTraceOff(t *testing.T) {
	prog := parser.MustParse(`p(a).`)
	g := parser.MustParseGoal(`p(a)`, prog.VarHigh)
	d, _ := db.FromFacts(prog.Facts)
	res, err := New(prog, DefaultOptions()).Prove(g, d)
	if err != nil || !res.Success {
		t.Fatalf("prove: %v", err)
	}
	if res.Spans != nil {
		t.Fatal("spans built with Trace=false")
	}
}

func TestSpanSinkReceivesEmissions(t *testing.T) {
	prog := parser.MustParse(`p(a). t :- p(X), ins.q(X).`)
	g := parser.MustParseGoal(`t`, prog.VarHigh)
	ring := obs.NewRingSink(4)
	opts := DefaultOptions()
	opts.Trace = true
	opts.SpanSink = ring
	e := New(prog, opts)
	for i := 0; i < 3; i++ {
		d, _ := db.FromFacts(prog.Facts)
		if res, err := e.Prove(g, d); err != nil || !res.Success {
			t.Fatalf("prove: %v", err)
		}
	}
	if got := len(ring.Snapshot()); got != 3 {
		t.Fatalf("sink received %d spans, want 3", got)
	}
	if ring.Last().Label != "t" {
		t.Fatalf("sink span label = %q", ring.Last().Label)
	}
}

func TestSpansProveDelta(t *testing.T) {
	prog := parser.MustParse(`acct(a, 100). acct(b, 50).
		transfer(Amt, F, T) :- iso(acct(F, BF), sub(BF, Amt, NF), del.acct(F, BF), ins.acct(F, NF),
			acct(T, BT), add(BT, Amt, NT), del.acct(T, BT), ins.acct(T, NT)).`)
	g := parser.MustParseGoal(`transfer(10, a, b)`, prog.VarHigh)
	d, _ := db.FromFacts(prog.Facts)
	opts := DefaultOptions()
	opts.Trace = true
	res, delta, err := New(prog, opts).ProveDelta(g, d)
	if err != nil || !res.Success {
		t.Fatalf("prove delta: %v", err)
	}
	if len(delta) == 0 {
		t.Fatal("no write set")
	}
	if res.Spans == nil {
		t.Fatal("ProveDelta did not build spans")
	}
	tree := res.Spans.Tree()
	if !strings.Contains(tree, "iso") {
		t.Fatalf("transfer span tree missing iso:\n%s", tree)
	}
	if res.Spans.Writes != 4 {
		t.Fatalf("transfer should write 4 tuples, spans say %d:\n%s", res.Spans.Writes, tree)
	}
}
