package engine_test

import (
	"fmt"

	"repro/internal/db"
	"repro/internal/engine"
	"repro/internal/parser"
)

// A transaction with a precondition: change a phone number only if the
// old entry exists. Failure rolls the database back.
func ExampleEngine_Prove() {
	prog := parser.MustParse(`
		tel(mary, 1234).
		change(Name, New) :- tel(Name, Old), del.tel(Name, Old), ins.tel(Name, New).
	`)
	d, _ := db.FromFacts(prog.Facts)
	eng := engine.NewDefault(prog)

	goal := parser.MustParseGoal("change(mary, 4321)", prog.VarHigh)
	res, _ := eng.Prove(goal, d)
	fmt.Println("committed:", res.Success)
	fmt.Print(d)

	goal2 := parser.MustParseGoal("change(nobody, 1)", prog.VarHigh)
	res2, _ := eng.Prove(goal2, d)
	fmt.Println("committed:", res2.Success)
	fmt.Print(d)
	// Output:
	// committed: true
	// tel(mary, 4321).
	// committed: false
	// tel(mary, 4321).
}

// Solutions enumerates every execution: each answer carries its bindings
// and final database.
func ExampleEngine_Solutions() {
	prog := parser.MustParse(`
		stock(fig). stock(yam).
		take(X) :- stock(X), del.stock(X), ins.taken(X).
	`)
	d, _ := db.FromFacts(prog.Facts)
	goal := parser.MustParseGoal("take(X)", prog.VarHigh)
	sols, _, _ := engine.NewDefault(prog).Solutions(goal, d, 0)
	for _, s := range sols {
		fmt.Println("taken:", s.Bindings["X"])
	}
	// Output:
	// taken: fig
	// taken: yam
}

// Concurrent composition interleaves processes that communicate through
// the database: the consumer's query can only be satisfied after the
// producer's insertion.
func ExampleEngine_Prove_concurrency() {
	prog := parser.MustParse(`
		producer :- ins.msg(hello).
		consumer :- msg(M), ins.got(M).
	`)
	d := db.New()
	goal := parser.MustParseGoal("producer | consumer", prog.VarHigh)
	res, _ := engine.NewDefault(prog).Prove(goal, d)
	fmt.Println("committed:", res.Success)
	fmt.Print(d)
	// Output:
	// committed: true
	// got(hello).
	// msg(hello).
}
