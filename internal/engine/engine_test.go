package engine

import (
	"errors"
	"testing"

	"repro/internal/db"
	"repro/internal/parser"
	"repro/internal/term"
)

// run parses program src, builds the initial DB from its facts, and proves
// goal, returning the result and the final database.
func run(t *testing.T, src, goal string, opts Options) (*Result, *db.DB) {
	t.Helper()
	prog, err := parser.Parse(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	g, _, err := parser.ParseGoal(goal, prog.VarHigh)
	if err != nil {
		t.Fatalf("parse goal: %v", err)
	}
	d, err := db.FromFacts(prog.Facts)
	if err != nil {
		t.Fatal(err)
	}
	e := New(prog, opts)
	res, err := e.Prove(g, d)
	if err != nil {
		t.Fatalf("prove: %v", err)
	}
	return res, d
}

func defOpts() Options { return DefaultOptions() }

func TestElementaryInsert(t *testing.T) {
	res, d := run(t, ``, `ins.p(a)`, defOpts())
	if !res.Success {
		t.Fatal("ins.p(a) failed")
	}
	if !d.Contains("p", []term.Term{term.NewSym("a")}) {
		t.Fatal("p(a) not in final DB")
	}
}

func TestElementaryDelete(t *testing.T) {
	res, d := run(t, `p(a).`, `del.p(a)`, defOpts())
	if !res.Success || d.Contains("p", []term.Term{term.NewSym("a")}) {
		t.Fatal("del.p(a) did not remove tuple")
	}
}

func TestQueryBindsVariable(t *testing.T) {
	res, _ := run(t, `tel(mary, 1234).`, `tel(mary, N)`, defOpts())
	if !res.Success {
		t.Fatal("query failed")
	}
	if got := res.Bindings["N"]; !got.Equal(term.NewInt(1234)) {
		t.Fatalf("N = %v", got)
	}
}

func TestQueryFailsOnAbsentTuple(t *testing.T) {
	res, _ := run(t, `tel(mary, 1234).`, `tel(bob, N)`, defOpts())
	if res.Success {
		t.Fatal("query of absent tuple succeeded")
	}
}

func TestFailureRollsBackDatabase(t *testing.T) {
	// ins.q(a) executes, then p(zzz) fails; the DB must be restored.
	res, d := run(t, `p(a).`, `ins.q(a), p(zzz)`, defOpts())
	if res.Success {
		t.Fatal("should fail")
	}
	if d.Contains("q", []term.Term{term.NewSym("a")}) {
		t.Fatal("failed execution left q(a) behind (no rollback)")
	}
	if d.Size() != 1 {
		t.Fatalf("db size = %d, want 1", d.Size())
	}
}

func TestSequencingThreadsState(t *testing.T) {
	// Paper §2: del.p(b) ⊗ ins.q(b) — q sees p's deletion already applied.
	res, d := run(t, `p(b).`, `del.p(b), empty.p, ins.q(b)`, defOpts())
	if !res.Success {
		t.Fatal("sequence failed")
	}
	if d.Contains("p", []term.Term{term.NewSym("b")}) || !d.Contains("q", []term.Term{term.NewSym("b")}) {
		t.Fatalf("final db wrong:\n%s", d)
	}
}

func TestPreconditionPattern(t *testing.T) {
	// The paper's fi[p(b) ⊗ del.p(b)]: succeeds iff p(b) holds initially.
	src := `p(b).
	        r(X) :- p(X), del.p(X).`
	res, d := run(t, src, `r(b)`, defOpts())
	if !res.Success || d.Contains("p", []term.Term{term.NewSym("b")}) {
		t.Fatal("precondition transaction misbehaved")
	}
	res2, _ := run(t, `r(X) :- p(X), del.p(X).`, `r(b)`, defOpts())
	if res2.Success {
		t.Fatal("r(b) succeeded with empty p")
	}
}

func TestRuleNondeterminism(t *testing.T) {
	// Two rules: the first fails, the second succeeds; backtracking between
	// rule choices must work.
	src := `
		t :- p(x), ins.r(first).
		t :- q(y), ins.r(second).
		q(y).
	`
	res, d := run(t, src, `t`, defOpts())
	if !res.Success {
		t.Fatal("t failed")
	}
	if !d.Contains("r", []term.Term{term.NewSym("second")}) {
		t.Fatalf("wrong rule chosen:\n%s", d)
	}
}

func TestTupleNondeterminism(t *testing.T) {
	// Choosing the right tuple requires backtracking over bindings.
	src := `
		item(a). item(b). item(c).
		ok(b).
		pick :- item(X), ok(X), ins.chosen(X).
	`
	res, d := run(t, src, `pick`, defOpts())
	if !res.Success || !d.Contains("chosen", []term.Term{term.NewSym("b")}) {
		t.Fatalf("pick failed or chose wrong item:\n%s", d)
	}
}

// --- Example 2.1 / 2.2: banking -------------------------------------------

const bankSrc = `
	account(alice, 100).
	account(bob, 50).
	balance(A, B) :- account(A, B).
	change_balance(A, B1, B2) :- del.account(A, B1), ins.account(A, B2).
	withdraw(Amt, A) :- balance(A, B), B >= Amt, sub(B, Amt, C), change_balance(A, B, C).
	deposit(Amt, A) :- balance(A, B), add(B, Amt, C), change_balance(A, B, C).
	transfer(Amt, A, B) :- withdraw(Amt, A), deposit(Amt, B).
`

func accountBal(t *testing.T, d *db.DB, who string) int64 {
	t.Helper()
	rows := d.Tuples("account", 2)
	for _, r := range rows {
		if r[0].SymName() == who {
			return r[1].IntVal()
		}
	}
	t.Fatalf("no account row for %s", who)
	return 0
}

func TestBankTransfer(t *testing.T) {
	res, d := run(t, bankSrc, `transfer(30, alice, bob)`, defOpts())
	if !res.Success {
		t.Fatal("transfer failed")
	}
	if a, b := accountBal(t, d, "alice"), accountBal(t, d, "bob"); a != 70 || b != 80 {
		t.Fatalf("balances alice=%d bob=%d, want 70/80", a, b)
	}
}

func TestBankOverdraftAborts(t *testing.T) {
	// Example 2.2: withdraw fails (balance too small) ⇒ the whole transfer
	// aborts and the database is unchanged (relative commit / rollback).
	res, d := run(t, bankSrc, `transfer(200, alice, bob)`, defOpts())
	if res.Success {
		t.Fatal("overdraft transfer succeeded")
	}
	if a, b := accountBal(t, d, "alice"), accountBal(t, d, "bob"); a != 100 || b != 50 {
		t.Fatalf("balances alice=%d bob=%d changed after aborted transfer", a, b)
	}
}

func TestBankTransferChain(t *testing.T) {
	res, d := run(t, bankSrc, `transfer(30, alice, bob), transfer(80, bob, alice)`, defOpts())
	if !res.Success {
		t.Fatal("chained transfers failed")
	}
	if a, b := accountBal(t, d, "alice"), accountBal(t, d, "bob"); a != 150 || b != 0 {
		t.Fatalf("balances alice=%d bob=%d, want 150/0", a, b)
	}
}

// --- Concurrency -----------------------------------------------------------

func TestConcurrentComposition(t *testing.T) {
	res, d := run(t, ``, `ins.a | ins.b`, defOpts())
	if !res.Success || !d.Contains("a", nil) || !d.Contains("b", nil) {
		t.Fatal("concurrent insertions failed")
	}
}

func TestCommunicationThroughDatabase(t *testing.T) {
	// One process waits for a tuple the other writes: producer ins.m(x);
	// consumer m(X) ⊗ ins.got(X). Only interleavings where the insert
	// precedes the read succeed.
	src := `
		producer :- ins.m(x).
		consumer :- m(X), ins.got(X).
	`
	res, d := run(t, src, `producer | consumer`, defOpts())
	if !res.Success {
		t.Fatal("producer|consumer failed")
	}
	if !d.Contains("got", []term.Term{term.NewSym("x")}) {
		t.Fatalf("consumer did not read producer's message:\n%s", d)
	}
}

func TestConsumerAloneFails(t *testing.T) {
	res, _ := run(t, `consumer :- m(X), ins.got(X).`, `consumer`, defOpts())
	if res.Success {
		t.Fatal("consumer succeeded without producer")
	}
}

func TestHandshake(t *testing.T) {
	// Two-way synchronization: ping waits for the pong reply.
	src := `
		ping :- ins.req, ack, ins.done_ping.
		pong :- req, ins.ack, ins.done_pong.
	`
	res, d := run(t, src, `ping | pong`, defOpts())
	if !res.Success || !d.Contains("done_ping", nil) || !d.Contains("done_pong", nil) {
		t.Fatalf("handshake failed:\n%s", d)
	}
}

func TestInterleavingRequiredBothOrders(t *testing.T) {
	// a must run before b's test, and b before a's test: only a genuinely
	// interleaved execution (not a serial one) can succeed.
	src := `
		pa :- ins.sa, sb, ins.oka.
		pb :- ins.sb, sa, ins.okb.
	`
	res, d := run(t, src, `pa | pb`, defOpts())
	if !res.Success || !d.Contains("oka", nil) || !d.Contains("okb", nil) {
		t.Fatalf("interleaved handshake failed:\n%s", d)
	}
	// Serial composition in either order must fail.
	res2, _ := run(t, src, `pa, pb`, defOpts())
	if res2.Success {
		t.Fatal("serial pa,pb should fail")
	}
	res3, _ := run(t, src, `pb, pa`, defOpts())
	if res3.Success {
		t.Fatal("serial pb,pa should fail")
	}
}

func TestConcurrencyAllMustSucceed(t *testing.T) {
	res, d := run(t, ``, `ins.a | nosuch`, defOpts())
	if res.Success {
		t.Fatal("conjunction with failing branch succeeded")
	}
	if d.Contains("a", nil) {
		t.Fatal("rollback missed after concurrent failure")
	}
}

// --- Isolation --------------------------------------------------------------

func TestIsolationBlocksInterleaving(t *testing.T) {
	// Without iso, the flag trick succeeds (sibling sees intermediate state);
	// with iso it must fail.
	src := `
		flagger :- ins.flag, del.flag.
		spy :- flag, ins.saw.
	`
	res, _ := run(t, src, `flagger | spy`, defOpts())
	if !res.Success {
		t.Fatal("unisolated interleaving should succeed")
	}
	res2, _ := run(t, src, `iso(flagger) | spy`, defOpts())
	if res2.Success {
		t.Fatal("spy observed the inside of an isolated transaction")
	}
}

func TestIsolationSerializesSiblings(t *testing.T) {
	// iso(t1) | iso(t2) behaves like some serial order (paper §2).
	src := `
		counter(0).
		bump :- counter(N), del.counter(N), add(N, 1, M), ins.counter(M).
	`
	res, d := run(t, src, `iso(bump) | iso(bump) | iso(bump)`, defOpts())
	if !res.Success {
		t.Fatal("isolated bumps failed")
	}
	if !d.Contains("counter", []term.Term{term.NewInt(3)}) {
		t.Fatalf("lost update under isolation:\n%s", d)
	}
	if d.Count("counter", 1) != 1 {
		t.Fatalf("counter relation corrupted:\n%s", d)
	}
}

func TestUnisolatedLostUpdatePossible(t *testing.T) {
	// Without isolation some interleaving loses an update: there exists an
	// execution ending with counter(1) after two bumps. Use Solutions to
	// check the reachable final states.
	src := `
		counter(0).
		bump :- counter(N), del.counter(N), add(N, 1, M), ins.counter(M).
	`
	prog := parser.MustParse(src)
	g := parser.MustParseGoal(`bump | bump`, prog.VarHigh)
	d, _ := db.FromFacts(prog.Facts)
	e := New(prog, defOpts())
	sols, _, err := e.Solutions(g, d, 0)
	if err != nil {
		t.Fatal(err)
	}
	finals := map[int64]bool{}
	for _, s := range sols {
		for _, row := range s.Final.Tuples("counter", 1) {
			finals[row[0].IntVal()] = true
		}
	}
	if !finals[2] {
		t.Error("serializable outcome counter(2) not reachable")
	}
	if !finals[1] {
		t.Error("lost-update outcome counter(1) not reachable without isolation")
	}
}

func TestIsoBindingsEscape(t *testing.T) {
	// Variable bindings made inside iso must be visible outside it.
	res, _ := run(t, `p(v).`, `iso(p(X)), q(X)`, defOpts())
	if res.Success {
		t.Fatal("q(v) should fail (no q facts)")
	}
	res2, d := run(t, `p(v).`, `iso(p(X)), ins.q(X)`, defOpts())
	if !res2.Success || !d.Contains("q", []term.Term{term.NewSym("v")}) {
		t.Fatal("binding from inside iso not visible outside")
	}
}

func TestNestedIsolation(t *testing.T) {
	src := `
		inner :- ins.x, del.x.
		outer :- iso(inner), ins.y.
	`
	res, d := run(t, src, `iso(outer) | iso(outer)`, defOpts())
	if !res.Success || !d.Contains("y", nil) {
		t.Fatal("nested isolation failed")
	}
}

// --- Recursion and loop check -----------------------------------------------

func TestRecursionTransitiveClosure(t *testing.T) {
	src := `
		edge(a, b). edge(b, c). edge(c, d).
		path(X, Y) :- edge(X, Y).
		path(X, Y) :- edge(X, Z), path(Z, Y).
	`
	res, _ := run(t, src, `path(a, d)`, defOpts())
	if !res.Success {
		t.Fatal("path(a,d) failed")
	}
	res2, _ := run(t, src, `path(d, a)`, defOpts())
	if res2.Success {
		t.Fatal("path(d,a) succeeded")
	}
}

func TestLoopCheckTerminatesOnCycles(t *testing.T) {
	src := `
		edge(a, b). edge(b, a).
		path(X, Y) :- edge(X, Y).
		path(X, Y) :- edge(X, Z), path(Z, Y).
	`
	res, _ := run(t, src, `path(a, zzz)`, defOpts())
	if res.Success {
		t.Fatal("path into nowhere succeeded")
	}
}

func TestLeftRecursionTerminates(t *testing.T) {
	src := `
		p :- p.
		p :- ins.done.
	`
	res, d := run(t, src, `p`, defOpts())
	if !res.Success || !d.Contains("done", nil) {
		t.Fatal("left recursion with escape failed")
	}
}

func TestPureLoopFails(t *testing.T) {
	res, _ := run(t, `p :- p.`, `p`, defOpts())
	if res.Success {
		t.Fatal("p :- p proved p")
	}
}

func TestRecursionWithUpdatesIteration(t *testing.T) {
	// Sequential tail recursion as iteration: consume all work items.
	src := `
		todo(a). todo(b). todo(c).
		drain :- todo(X), del.todo(X), ins.done(X), drain.
		drain :- empty.todo.
	`
	res, d := run(t, src, `drain`, defOpts())
	if !res.Success {
		t.Fatal("drain failed")
	}
	if d.Count("todo", 1) != 0 || d.Count("done", 1) != 3 {
		t.Fatalf("drain incomplete:\n%s", d)
	}
}

func TestWithoutLoopCheckBudgetCatchesLoop(t *testing.T) {
	prog := parser.MustParse(`p :- p.`)
	g := parser.MustParseGoal(`p`, prog.VarHigh)
	d := db.New()
	e := New(prog, Options{MaxSteps: 10_000, MaxDepth: 1_000})
	_, err := e.Prove(g, d)
	if err == nil {
		t.Fatal("expected budget/depth error without loop check")
	}
	if !errors.Is(err, ErrBudget) && !errors.Is(err, ErrDepth) {
		t.Fatalf("unexpected error %v", err)
	}
}

// --- Tabling soundness -------------------------------------------------------

func TestTablingAgreesWithUntabled(t *testing.T) {
	// A search with many shared failing subproblems must give the same
	// answer with and without tabling.
	src := `
		edge(a, b). edge(b, c). edge(c, a). edge(b, d).
		reach(X, Y) :- edge(X, Y).
		reach(X, Y) :- edge(X, Z), reach(Z, Y).
	`
	for _, goal := range []string{`reach(a, d)`, `reach(d, a)`, `reach(a, zzz)`} {
		r1, _ := run(t, src, goal, Options{LoopCheck: true, Table: true})
		r2, _ := run(t, src, goal, Options{LoopCheck: true, Table: false})
		if r1.Success != r2.Success {
			t.Fatalf("%s: tabled=%v untabled=%v", goal, r1.Success, r2.Success)
		}
	}
}

func TestTablingPrunesWork(t *testing.T) {
	// Diamond-shaped failing search: tabling must reduce steps.
	src := `
		edge(a, b1). edge(a, b2). edge(b1, c). edge(b2, c).
		edge(c, d1). edge(d1, c2). edge(c2, d2).
		reach(X, Y) :- edge(X, Y).
		reach(X, Y) :- edge(X, Z), reach(Z, Y).
	`
	rt, _ := run(t, src, `reach(a, nowhere)`, Options{LoopCheck: true, Table: true})
	ru, _ := run(t, src, `reach(a, nowhere)`, Options{LoopCheck: true, Table: false})
	if rt.Stats.Steps >= ru.Stats.Steps {
		t.Errorf("tabling did not prune: tabled %d steps, untabled %d", rt.Stats.Steps, ru.Stats.Steps)
	}
	if rt.Stats.TableHits == 0 {
		t.Error("no table hits recorded")
	}
}

// --- Budgets and errors -------------------------------------------------------

func TestUnsafeUpdateIsRuntimeError(t *testing.T) {
	prog := parser.MustParse(`bad :- ins.p(X).`)
	g := parser.MustParseGoal(`bad`, prog.VarHigh)
	e := NewDefault(prog)
	_, err := e.Prove(g, db.New())
	var rerr *RuntimeError
	if !errors.As(err, &rerr) {
		t.Fatalf("expected RuntimeError, got %v", err)
	}
}

func TestBuiltinErrorSurfaces(t *testing.T) {
	prog := parser.MustParse(`bad :- X > 3.`)
	g := parser.MustParseGoal(`bad`, prog.VarHigh)
	e := NewDefault(prog)
	_, err := e.Prove(g, db.New())
	var rerr *RuntimeError
	if !errors.As(err, &rerr) {
		t.Fatalf("expected RuntimeError, got %v", err)
	}
}

func TestDBRestoredAfterError(t *testing.T) {
	prog := parser.MustParse(`bad :- ins.q(a), ins.p(X).`)
	g := parser.MustParseGoal(`bad`, prog.VarHigh)
	d := db.New()
	d.Insert("seed", []term.Term{term.NewSym("s")})
	d.ResetTrail()
	e := NewDefault(prog)
	if _, err := e.Prove(g, d); err == nil {
		t.Fatal("expected error")
	}
	if d.Size() != 1 || !d.Contains("seed", []term.Term{term.NewSym("s")}) {
		t.Fatalf("db not restored after error:\n%s", d)
	}
}

// --- Solutions ----------------------------------------------------------------

func TestSolutionsEnumeratesBindings(t *testing.T) {
	prog := parser.MustParse(`p(a). p(b). p(c).`)
	g := parser.MustParseGoal(`p(X)`, prog.VarHigh)
	d, _ := db.FromFacts(prog.Facts)
	e := NewDefault(prog)
	sols, res, err := e.Solutions(g, d, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(sols) != 3 || !res.Success {
		t.Fatalf("got %d solutions", len(sols))
	}
	seen := map[string]bool{}
	for _, s := range sols {
		seen[s.Bindings["X"].String()] = true
	}
	for _, want := range []string{"a", "b", "c"} {
		if !seen[want] {
			t.Errorf("missing binding %s", want)
		}
	}
	// The source DB must be untouched.
	if d.Size() != 3 {
		t.Fatal("Solutions mutated input db")
	}
}

func TestSolutionsMaxCap(t *testing.T) {
	prog := parser.MustParse(`p(a). p(b). p(c).`)
	g := parser.MustParseGoal(`p(X)`, prog.VarHigh)
	d, _ := db.FromFacts(prog.Facts)
	sols, _, err := NewDefault(prog).Solutions(g, d, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(sols) != 2 {
		t.Fatalf("cap ignored: %d solutions", len(sols))
	}
}

func TestSolutionsFinalStates(t *testing.T) {
	prog := parser.MustParse(`
		p(a). p(b).
		take :- p(X), del.p(X), ins.got(X).
	`)
	g := parser.MustParseGoal(`take`, prog.VarHigh)
	d, _ := db.FromFacts(prog.Facts)
	sols, _, err := NewDefault(prog).Solutions(g, d, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(sols) != 2 {
		t.Fatalf("got %d solutions, want 2", len(sols))
	}
	for _, s := range sols {
		if s.Final.Count("got", 1) != 1 || s.Final.Count("p", 1) != 1 {
			t.Fatalf("final state wrong:\n%s", s.Final)
		}
	}
}

// --- Traces --------------------------------------------------------------------

func TestTraceRecordsWitnessPath(t *testing.T) {
	src := `
		t :- p(x), ins.r(first).
		t :- q(y), ins.r(second).
		q(y).
	`
	prog := parser.MustParse(src)
	g := parser.MustParseGoal(`t`, prog.VarHigh)
	d, _ := db.FromFacts(prog.Facts)
	opts := DefaultOptions()
	opts.Trace = true
	res, err := New(prog, opts).Prove(g, d)
	if err != nil || !res.Success {
		t.Fatalf("prove: %v %v", err, res)
	}
	// Witness path: call t, query q(y), ins r(second). The failed first
	// rule must have been popped from the trace.
	var ops []string
	for _, e := range res.Trace {
		ops = append(ops, e.String())
	}
	want := []string{"t", "q(y)", "ins.r(second)"}
	if len(ops) != len(want) {
		t.Fatalf("trace = %v, want %v", ops, want)
	}
	for i := range want {
		if ops[i] != want[i] {
			t.Fatalf("trace = %v, want %v", ops, want)
		}
	}
}

func TestNoTraceWhenDisabled(t *testing.T) {
	res, _ := run(t, `p(a).`, `p(a)`, defOpts())
	if res.Trace != nil {
		t.Fatal("trace recorded with Trace=false")
	}
}

// --- Free-variable answers through concurrency ---------------------------------

func TestConcurrentBindingSharing(t *testing.T) {
	// X is shared between concurrent branches: both must agree.
	src := `
		p(a). p(b).
		q(b). q(c).
	`
	res, _ := run(t, src, `p(X) | q(X)`, defOpts())
	if !res.Success {
		t.Fatal("p(X)|q(X) failed")
	}
	if got := res.Bindings["X"]; !got.Equal(term.NewSym("b")) {
		t.Fatalf("X = %v, want b", got)
	}
}

func TestProveLeavesFailedDBUnchangedUnderConcurrency(t *testing.T) {
	src := `
		w1 :- ins.a, nosuch.
		w2 :- ins.b.
	`
	res, d := run(t, src, `w1 | w2`, defOpts())
	if res.Success || d.Size() != 0 {
		t.Fatalf("failed concurrent goal left changes:\n%s", d)
	}
}

// --- Example 3.1: workflow specification ----------------------------------------

const workflowSrc = `
	% A simple workflow over one work item W: task1, then (task2 | subflow),
	% then task4. The subflow runs task5 then task6.
	workflow(W) :- task1(W), (task2(W) | subflow(W)), task4(W).
	subflow(W) :- task5(W), task6(W).
	task1(W) :- ins.done1(W).
	task2(W) :- done1(W), ins.done2(W).
	task4(W) :- done2(W), done6(W), ins.done4(W).
	task5(W) :- ins.done5(W).
	task6(W) :- done5(W), ins.done6(W).
`

func TestExample31WorkflowSpecification(t *testing.T) {
	res, d := run(t, workflowSrc, `workflow(item1)`, defOpts())
	if !res.Success {
		t.Fatal("workflow(item1) failed")
	}
	for _, p := range []string{"done1", "done2", "done4", "done5", "done6"} {
		if d.Count(p, 1) != 1 {
			t.Errorf("%s missing from history:\n%s", p, d)
		}
	}
}

func TestExample31OrderingEnforced(t *testing.T) {
	// task4 requires both task2 and task6 to have completed.
	src := workflowSrc
	res, _ := run(t, src, `task4(w)`, defOpts())
	if res.Success {
		t.Fatal("task4 ran before its predecessors")
	}
}

// --- Example 3.3: shared resources (agents) --------------------------------------

const agentsSrc = `
	agent(ann). agent(bob).
	qualified(ann, taskA). qualified(bob, taskA). qualified(bob, taskB).
	available(ann). available(bob).

	taskA(W) :- qualified(A, taskA), available(A), del.available(A),
	            ins.doing(A, W), del.doing(A, W), ins.didA(A, W), ins.available(A).
	taskB(W) :- qualified(A, taskB), available(A), del.available(A),
	            ins.doing(A, W), del.doing(A, W), ins.didB(A, W), ins.available(A).
	job(W) :- taskA(W), taskB(W).
`

func TestExample33AgentsAssigned(t *testing.T) {
	res, d := run(t, agentsSrc, `job(w1) | job(w2)`, defOpts())
	if !res.Success {
		t.Fatal("concurrent jobs failed")
	}
	if d.Count("didA", 2) != 2 || d.Count("didB", 2) != 2 {
		t.Fatalf("work history wrong:\n%s", d)
	}
	// All agents returned to the pool.
	if d.Count("available", 1) != 2 {
		t.Fatalf("agents not released:\n%s", d)
	}
}

func TestExample33OnlyQualifiedAgents(t *testing.T) {
	res, d := run(t, agentsSrc, `job(w1)`, defOpts())
	if !res.Success {
		t.Fatal("job failed")
	}
	// taskB can only have been done by bob.
	rows := d.Tuples("didB", 2)
	if len(rows) != 1 || rows[0][0].SymName() != "bob" {
		t.Fatalf("taskB done by unqualified agent:\n%s", d)
	}
}

// --- Example 3.4: cooperating workflows -------------------------------------------

func TestExample34CooperatingWorkflows(t *testing.T) {
	// Two workflows over related parts; wf2 waits for wf1's result.
	src := `
		wf1(P) :- ins.measured(P, 42).
		wf2(P) :- measured(P, V), ins.verified(P, V).
	`
	res, d := run(t, src, `wf1(part7) | wf2(part7)`, defOpts())
	if !res.Success {
		t.Fatal("cooperating workflows failed")
	}
	if !d.Contains("verified", []term.Term{term.NewSym("part7"), term.NewInt(42)}) {
		t.Fatalf("verification missing:\n%s", d)
	}
}

func TestStatsPopulated(t *testing.T) {
	res, _ := run(t, bankSrc, `transfer(30, alice, bob)`, defOpts())
	if res.Stats.Steps == 0 || res.Stats.MaxDepth == 0 {
		t.Fatalf("stats empty: %+v", res.Stats)
	}
}

func TestConcInsideIsoIsAtomic(t *testing.T) {
	// The concurrent pair inside iso interleaves internally, but a sibling
	// must never observe its intermediate states: spy needs flag while
	// only (ins.flag | del.flag) inside iso could provide it.
	src := `
		pair :- ins.flag | del.flag.
		spy :- flag, ins.saw.
	`
	// Unisolated: some interleaving lets spy observe flag.
	res, _ := run(t, src, `pair | spy`, defOpts())
	if !res.Success {
		t.Fatal("unisolated pair|spy should succeed")
	}
	// Isolated: the pair runs atomically; spy can never see flag...
	// unless the pair's internal interleaving ENDS with flag present.
	// ins.flag | del.flag can end with flag present (del before ins), so
	// spy CAN succeed after the block. Force the invisible case with a
	// pair that always nets out to no flag:
	src2 := `
		pair :- ins.flag, del.flag.
		spy :- flag, ins.saw.
	`
	res2, _ := run(t, src2, `iso(pair) | spy`, defOpts())
	if res2.Success {
		t.Fatal("spy observed inside iso(sequential pair)")
	}
	// And iso of the concurrent pair, choosing the order ending with flag
	// present, lets spy succeed AFTER the block — isolation is atomicity,
	// not invisibility of final states.
	res3, _ := run(t, src, `iso(pair) | spy`, defOpts())
	if !res3.Success {
		t.Fatal("iso(concurrent pair) should still allow spy via the del-then-ins order")
	}
}

func TestIsoUnderSolutionsEnumeratesAlternatives(t *testing.T) {
	// The iso body has two distinct executions with different final
	// states; Solutions must surface both.
	src := `
		t :- p(X), del.p(X), ins.chosen(X).
		p(a). p(b).
	`
	prog := parser.MustParse(src)
	g := parser.MustParseGoal("iso(t)", prog.VarHigh)
	d, _ := db.FromFacts(prog.Facts)
	sols, _, err := NewDefault(prog).Solutions(g, d, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(sols) != 2 {
		t.Fatalf("iso alternatives = %d, want 2", len(sols))
	}
}

func TestThreeConcurrentSequentialProcesses(t *testing.T) {
	// Corollary 4.6's shape in miniature: three sequential processes,
	// concurrent only at the top, implementing a 2-phase token pass.
	src := `
		p1 :- ins.tok(1), tok(3), del.tok(3), ins.done1.
		p2 :- tok(1), del.tok(1), ins.tok(2), ins.done2.
		p3 :- tok(2), del.tok(2), ins.tok(3), ins.done3.
	`
	res, d := run(t, src, `p1 | p2 | p3`, defOpts())
	if !res.Success {
		t.Fatal("token ring failed")
	}
	for _, p := range []string{"done1", "done2", "done3"} {
		if !d.Contains(p, nil) {
			t.Fatalf("%s missing:\n%s", p, d)
		}
	}
}

func TestEmptyTestFailsWhenNonEmptyProver(t *testing.T) {
	res, _ := run(t, `busy(x).`, `empty.busy`, defOpts())
	if res.Success {
		t.Fatal("empty test passed on non-empty relation")
	}
	// And considers all arities.
	res2, _ := run(t, `busy(x, y).`, `empty.busy`, defOpts())
	if res2.Success {
		t.Fatal("empty test ignored other arity")
	}
}

func TestRepeatedIsoOnUnchangedDB(t *testing.T) {
	// Regression (found by the differential reference test): two identical
	// iso blocks whose bodies are no-ops on the current database must both
	// complete. The path-cycle check used to leave the first body's
	// configuration on the path while its continuation ran, so the second
	// body was wrongly pruned as a cycle.
	src := `
		r0 :- iso(ins.a), iso(ins.a).
	`
	res, d := run(t, src+"a.\n", `r0`, defOpts())
	if !res.Success {
		t.Fatal("iso(ins.a), iso(ins.a) from {a} failed")
	}
	if !d.Contains("a", nil) {
		t.Fatal("final db wrong")
	}
	// Same shape without iso: the no-op insert twice in a row.
	res2, _ := run(t, ``, `ins.a, ins.a, ins.a`, defOpts())
	if !res2.Success {
		t.Fatal("repeated no-op inserts failed")
	}
	// And a sequential repeat of an identical call on an unchanged db.
	src3 := `
		noop :- ins.a.
		r :- noop, noop, noop.
	`
	res3, _ := run(t, src3+"a.\n", `r`, defOpts())
	if !res3.Success {
		t.Fatal("repeated no-op calls failed")
	}
}
