package engine

import (
	"testing"

	"repro/internal/db"
	"repro/internal/parser"
)

const profileSrc = `
edge(a, b). edge(b, c). edge(c, d).
path(X, Y) :- edge(X, Y).
path(X, Y) :- edge(X, Z), path(Z, Y).
reach(X) :- path(a, X).
`

func TestProfileSnapshot(t *testing.T) {
	prog, err := parser.Parse(profileSrc)
	if err != nil {
		t.Fatal(err)
	}
	d, err := db.FromFacts(prog.Facts)
	if err != nil {
		t.Fatal(err)
	}
	opts := DefaultOptions()
	opts.Profile = true
	e := New(prog, opts)

	g, _, err := parser.ParseGoal(`reach(d)`, prog.VarHigh)
	if err != nil {
		t.Fatal(err)
	}
	res, err := e.Prove(g, d)
	if err != nil || !res.Success {
		t.Fatalf("prove: %v success=%v", err, res != nil && res.Success)
	}

	prof := e.ProfileSnapshot()
	if prof == nil {
		t.Fatal("ProfileSnapshot = nil after a profiled proof")
	}
	reach, ok := prof["reach"]
	if !ok || reach.Calls != 1 {
		t.Errorf("reach profile = %+v, want 1 call", reach)
	}
	path, ok := prof["path"]
	if !ok || path.Calls < 3 {
		t.Errorf("path profile = %+v, want >= 3 calls (recursive descent a->d)", path)
	}
	// Each path call dispatches through the two path rules (the clause
	// index may narrow further, but fan-out is at least the call count).
	if path.Fanout < path.Calls {
		t.Errorf("path fan-out %d < calls %d", path.Fanout, path.Calls)
	}
	if reach.TimeUs < 0 || path.TimeUs < 0 {
		t.Errorf("negative attributed time: %+v %+v", reach, path)
	}

	// Cumulative across searches: a second proof adds to the same table.
	g2, _, err := parser.ParseGoal(`reach(b)`, prog.VarHigh)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.Prove(g2, d); err != nil {
		t.Fatal(err)
	}
	prof2 := e.ProfileSnapshot()
	if prof2["reach"].Calls != 2 {
		t.Errorf("reach calls after second proof = %d, want 2", prof2["reach"].Calls)
	}

	// The snapshot is a copy: mutating it must not affect the engine.
	prof2["reach"] = PredProfile{Calls: 999}
	if e.ProfileSnapshot()["reach"].Calls == 999 {
		t.Error("ProfileSnapshot aliases engine state")
	}
}

func TestProfileOffByDefault(t *testing.T) {
	prog, err := parser.Parse(profileSrc)
	if err != nil {
		t.Fatal(err)
	}
	d, err := db.FromFacts(prog.Facts)
	if err != nil {
		t.Fatal(err)
	}
	e := NewDefault(prog)
	g, _, err := parser.ParseGoal(`reach(c)`, prog.VarHigh)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.Prove(g, d); err != nil {
		t.Fatal(err)
	}
	if prof := e.ProfileSnapshot(); prof != nil {
		t.Errorf("ProfileSnapshot = %v with Profile off, want nil", prof)
	}
}

// ProveDelta and Enumerate never release their deriv; the profile must
// still reach the engine table (the flush rides on stats()).
func TestProfileFlushWithoutRelease(t *testing.T) {
	prog, err := parser.Parse(profileSrc)
	if err != nil {
		t.Fatal(err)
	}
	d, err := db.FromFacts(prog.Facts)
	if err != nil {
		t.Fatal(err)
	}
	opts := DefaultOptions()
	opts.Profile = true
	e := New(prog, opts)
	g, _, err := parser.ParseGoal(`reach(d)`, prog.VarHigh)
	if err != nil {
		t.Fatal(err)
	}
	res, _, err := e.ProveDelta(g, d)
	if err != nil || !res.Success {
		t.Fatalf("ProveDelta: %v", err)
	}
	if prof := e.ProfileSnapshot(); prof == nil || prof["reach"].Calls != 1 {
		t.Errorf("profile after ProveDelta = %v, want reach: 1 call", prof)
	}
}
