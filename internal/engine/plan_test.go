package engine

import (
	"fmt"
	"path/filepath"
	"sort"
	"strings"
	"testing"

	"repro/internal/ast"
	"repro/internal/obs"
	"repro/internal/parser"
)

// Planned evaluation must be invisible in the answers: for every corpus
// program and goal, the engine with Options.Plan on returns exactly the
// solutions (bindings and final database states) of the textual-order
// engine. Span trees are byte-identical when the planner reordered
// nothing; when it did reorder, trees are compared modulo the one thing
// planning is allowed to change — the order of read-only leaves within a
// parent — and the planned witness must be one of the textual answers.

// planCorpus returns every shipped .td program path.
func planCorpus(t *testing.T) []string {
	t.Helper()
	var files []string
	for _, dir := range []string{filepath.Join("..", "..", "testdata"), filepath.Join("..", "..", "examples", "programs")} {
		m, err := filepath.Glob(filepath.Join(dir, "*.td"))
		if err != nil {
			t.Fatal(err)
		}
		files = append(files, m...)
	}
	if len(files) == 0 {
		t.Fatal("no corpus programs found")
	}
	sort.Strings(files)
	return files
}

const planSolutionCap = 256

// planSolutions enumerates goal's solutions as a sorted multiset of
// (bindings, final fingerprint) strings. capped reports whether the
// enumeration hit the cap (sets are then incomparable across engines).
func planSolutions(t *testing.T, e *Engine, prog *ast.Program, g ast.Goal) (sols []string, capped bool) {
	t.Helper()
	d := freshDB(t, prog)
	list, _, err := e.Solutions(g, d, planSolutionCap)
	if err != nil {
		t.Fatalf("solutions: %v", err)
	}
	for _, s := range list {
		fp := s.Final.Fingerprint()
		sols = append(sols, fmt.Sprintf("%s|%x.%x", renderBindings(s.Bindings), fp[0], fp[1]))
	}
	sort.Strings(sols)
	return sols, len(list) == planSolutionCap
}

// canonSpan renders a span tree with every maximal run of consecutive
// read-only leaves (query/builtin/empty/call) under one parent sorted by
// kind and label: the only reordering planned evaluation may introduce.
// Structural nodes (iso, branch) and write leaves pin their positions.
func canonSpan(s *obs.Span) string {
	var b strings.Builder
	var walk func(s *obs.Span, depth int)
	readOnlyLeaf := func(c *obs.Span) bool {
		if len(c.Children) > 0 {
			return false
		}
		switch c.Kind {
		case "query", "builtin", "empty", "call":
			return true
		}
		return false
	}
	walk = func(s *obs.Span, depth int) {
		fmt.Fprintf(&b, "%s%s %s\n", strings.Repeat(" ", depth), s.Kind, s.Label)
		kids := append([]*obs.Span(nil), s.Children...)
		for lo := 0; lo < len(kids); {
			if !readOnlyLeaf(kids[lo]) {
				lo++
				continue
			}
			hi := lo
			for hi < len(kids) && readOnlyLeaf(kids[hi]) {
				hi++
			}
			run := kids[lo:hi]
			sort.SliceStable(run, func(i, j int) bool {
				if run[i].Kind != run[j].Kind {
					return run[i].Kind < run[j].Kind
				}
				return run[i].Label < run[j].Label
			})
			lo = hi
		}
		for _, c := range kids {
			walk(c, depth+1)
		}
	}
	walk(s, 0)
	return b.String()
}

// planGoals returns the goals to run for one corpus program: its own ?-
// directives.
func planGoals(t *testing.T, prog *ast.Program) []ast.Goal {
	t.Helper()
	return prog.Queries
}

func TestPlanDifferentialCorpus(t *testing.T) {
	for _, file := range planCorpus(t) {
		prog, err := parser.ParseFile(file)
		if err != nil {
			t.Fatalf("parse %s: %v", file, err)
		}
		textualOpts := DefaultOptions()
		textualOpts.Trace = true
		plannedOpts := textualOpts
		plannedOpts.Plan = true
		textual := New(prog, textualOpts)
		planned := New(prog, plannedOpts)
		reorders := planned.PlanReport().Reorders
		for i, g := range planGoals(t, prog) {
			name := fmt.Sprintf("%s/goal%d", filepath.Base(file), i)
			t.Run(name, func(t *testing.T) {
				// Answer sets: identical solutions (bindings + final DB).
				st, ct := planSolutions(t, textual, prog, g)
				sp, cp := planSolutions(t, planned, prog, g)
				if ct || cp {
					if ct != cp {
						t.Fatalf("solution cap hit by one engine only: textual=%v planned=%v", ct, cp)
					}
				} else if strings.Join(st, "\n") != strings.Join(sp, "\n") {
					t.Fatalf("solution sets differ:\n textual: %v\n planned: %v", st, sp)
				}

				// Witnesses: success parity always; identical span trees
				// when nothing was reordered, canonical equality otherwise.
				dt := freshDB(t, prog)
				rt, err := textual.Prove(g, dt)
				if err != nil {
					t.Fatalf("textual prove: %v", err)
				}
				dp := freshDB(t, prog)
				rp, err := planned.Prove(g, dp)
				if err != nil {
					t.Fatalf("planned prove: %v", err)
				}
				if rt.Success != rp.Success {
					t.Fatalf("success differs: textual=%v planned=%v", rt.Success, rp.Success)
				}
				if !rt.Success {
					return
				}
				if reorders == 0 {
					if rt.Spans.Tree() != rp.Spans.Tree() {
						t.Fatalf("span trees differ with zero reorders:\n textual:\n%s\n planned:\n%s",
							rt.Spans.Tree(), rp.Spans.Tree())
					}
					return
				}
				// The planned witness must be a textual answer.
				fpp := dp.Fingerprint()
				key := fmt.Sprintf("%s|%x.%x", renderBindings(rp.Bindings), fpp[0], fpp[1])
				if !ct {
					found := false
					for _, s := range st {
						if s == key {
							found = true
							break
						}
					}
					if !found {
						t.Fatalf("planned witness %q is not a textual solution", key)
					}
				}
				// Same witness => same tree modulo read-only leaf order.
				fpt := dt.Fingerprint()
				if fpt == fpp && renderBindings(rt.Bindings) == renderBindings(rp.Bindings) {
					if canonSpan(rt.Spans) != canonSpan(rp.Spans) {
						t.Fatalf("canonical span trees differ:\n textual:\n%s\n planned:\n%s",
							canonSpan(rt.Spans), canonSpan(rp.Spans))
					}
				}
			})
		}
	}
}

// The analyze workload: naive textual order scans every reading; the
// planner rewrites the body to start from the first-arg-indexed
// sample_reading lookup when the sample is bound.
const planAnalyzeSrc = `
sample_reading(s1, r1). sample_reading(s1, r2).
sample_reading(s2, r3). sample_reading(s2, r4).
reading(r1, 950). reading(r2, 10).
reading(r3, 20).  reading(r4, 30).
hot(W) :- reading(R, V), V > 900, sample_reading(W, R).
`

func planParse(t *testing.T, src string) *ast.Program {
	t.Helper()
	prog, err := parser.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	return prog
}

func planGoal(t *testing.T, prog *ast.Program, src string) ast.Goal {
	t.Helper()
	g, _, err := parser.ParseGoal(src, prog.VarHigh)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

// TestPlannedDispatchFires proves a ground call takes the planned variant
// (PlanHits > 0) and does measurably less work than textual order.
func TestPlannedDispatchFires(t *testing.T) {
	prog := planParse(t, planAnalyzeSrc)
	opts := DefaultOptions()
	opts.Plan = true
	planned := New(prog, opts)
	if planned.PlanReport() == nil || planned.PlanReport().Reorders == 0 {
		t.Fatalf("expected a reorder for hot/1, report: %+v", planned.PlanReport())
	}
	textual := NewDefault(prog)
	g := planGoal(t, prog, "hot(s2)")

	dp := freshDB(t, prog)
	rp, err := planned.Prove(g, dp)
	if err != nil {
		t.Fatal(err)
	}
	dt := freshDB(t, prog)
	rt, err := textual.Prove(g, dt)
	if err != nil {
		t.Fatal(err)
	}
	if rp.Success || rt.Success {
		t.Fatalf("hot(s2) should fail on both engines: planned=%v textual=%v", rp.Success, rt.Success)
	}
	if rp.Stats.PlanHits == 0 {
		t.Fatalf("planned engine never used a planned variant: %+v", rp.Stats)
	}
	if rt.Stats.PlanHits != 0 {
		t.Fatalf("textual engine reported plan hits: %+v", rt.Stats)
	}
	if rp.Stats.Steps >= rt.Stats.Steps {
		t.Fatalf("planned search did not save steps: planned=%d textual=%d", rp.Stats.Steps, rt.Stats.Steps)
	}
}

// TestPlanUnseenAdornmentFallsBack: a call pattern the dataflow never saw
// (free argument where every planned variant wants it bound) must fall
// back to textual order and still agree on the answers.
func TestPlanUnseenAdornmentFallsBack(t *testing.T) {
	prog := planParse(t, planAnalyzeSrc)
	opts := DefaultOptions()
	opts.Plan = true
	planned := New(prog, opts)
	textual := NewDefault(prog)
	g := planGoal(t, prog, "hot(W)")
	sols := func(e *Engine) []string {
		d := freshDB(t, prog)
		list, _, err := e.Solutions(g, d, 0)
		if err != nil {
			t.Fatal(err)
		}
		var out []string
		for _, s := range list {
			out = append(out, renderBindings(s.Bindings))
		}
		sort.Strings(out)
		return out
	}
	sp, st := sols(planned), sols(textual)
	if strings.Join(sp, ",") != strings.Join(st, ",") {
		t.Fatalf("solutions differ: planned=%v textual=%v", sp, st)
	}
}

// TestPlanConcTaint is the soundness counterexample for reordering under
// '|': branch A reads p(X, b) then p(a, c); branch B inserts (z, b),
// deletes it, then inserts (a, c). Textual A succeeds via interleaving;
// A's planned order (the all-bound p(a, c) hoisted first) would fail —
// p(a, c) only holds after (z, b) is gone for good. The taint flag must
// keep the planned engine on textual order under the un-isolated '|', so
// both engines succeed.
func TestPlanConcTaint(t *testing.T) {
	src := `
seed(z).
left :- p(X, b), p(a, c).
right :- seed(Z), ins.p(Z, b), del.p(Z, b), ins.p(a, c).
`
	prog := planParse(t, src)
	opts := DefaultOptions()
	opts.Plan = true
	planned := New(prog, opts)
	rep := planned.PlanReport()
	if rep.Reorders == 0 {
		t.Fatalf("expected left/0's body to be reorderable, report: %+v", rep)
	}
	textual := NewDefault(prog)
	g := planGoal(t, prog, "left | right")
	for name, e := range map[string]*Engine{"planned": planned, "textual": textual} {
		d := freshDB(t, prog)
		res, err := e.Prove(g, d)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if !res.Success {
			t.Fatalf("%s engine failed the interleaving-dependent goal: taint not honored?", name)
		}
	}
	// Outside the '|' the planned order must actually engage (and fail,
	// since left alone never sees p populated).
	d := freshDB(t, prog)
	res, err := planned.Prove(planGoal(t, prog, "left"), d)
	if err != nil {
		t.Fatal(err)
	}
	if res.Success {
		t.Fatal("left alone should fail")
	}
	if res.Stats.PlanHits == 0 {
		t.Fatal("expected planned dispatch outside '|'")
	}
}

// TestPlanInsideIso: iso bodies are atomic, so planned dispatch applies
// inside them even when the iso sits under '|'.
func TestPlanInsideIso(t *testing.T) {
	src := `
sample_reading(s1, r1). sample_reading(s2, r2).
reading(r1, 950). reading(r2, 20).
hot(W) :- reading(R, V), V > 900, sample_reading(W, R).
`
	prog := planParse(t, src)
	opts := DefaultOptions()
	opts.Plan = true
	planned := New(prog, opts)
	d := freshDB(t, prog)
	res, err := planned.Prove(planGoal(t, prog, "iso(hot(s1)) | iso(hot(W))"), d)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Success {
		t.Fatal("goal should succeed")
	}
	if res.Stats.PlanHits == 0 {
		t.Fatal("expected planned dispatch inside iso bodies")
	}
}

// TestNoPlanDefault: without Options.Plan the engine carries no plan
// state at all — the pre-plan behavior is reproduced bit for bit.
func TestNoPlanDefault(t *testing.T) {
	prog := planParse(t, planAnalyzeSrc)
	e := NewDefault(prog)
	if e.plan != nil || e.planRep != nil {
		t.Fatal("default engine must not compile a plan")
	}
	if e.PlanReport() != nil {
		t.Fatal("PlanReport must be nil without Options.Plan")
	}
}
