package engine

import (
	"errors"
	"fmt"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/db"
	"repro/internal/parser"
)

// genProgram emits a random but well-formed TD program from a small
// grammar: base facts over a tiny domain, and rules whose bodies mix
// queries, updates, emptiness tests, sequencing, concurrency, isolation,
// and (possibly recursive) calls. Used to soak-test the engine for
// crashes, rollback discipline, and pruning soundness.
//
// Every quick.Check over generated programs pins Config.Rand to a fixed
// seed: the grammar can emit adversarial concurrency whose search, while
// budget-bounded, occasionally burns minutes and gigabytes before the
// budget trips (and a deep-enough derivation can exhaust the goroutine
// stack before ErrDepth fires). A time-seeded run turns that tail into CI
// flakiness; a pinned run keeps the same broad operator coverage and is
// reproducible. Open-ended exploration belongs in the fuzz targets.
func genProgram(r *rand.Rand) string {
	var b strings.Builder
	consts := []string{"a", "b", "c"}
	basePreds := []string{"p", "q", "s"}
	rulePreds := []string{"r0", "r1", "r2"}

	// Facts.
	for i := 0; i < 1+r.Intn(4); i++ {
		fmt.Fprintf(&b, "%s(%s).\n", basePreds[r.Intn(len(basePreds))], consts[r.Intn(len(consts))])
	}

	var goal func(depth int, boundVar string) string
	goal = func(depth int, boundVar string) string {
		if depth <= 0 {
			return fmt.Sprintf("%s(%s)", basePreds[r.Intn(len(basePreds))], consts[r.Intn(len(consts))])
		}
		switch r.Intn(8) {
		case 0: // query binding X
			return fmt.Sprintf("%s(%s)", basePreds[r.Intn(len(basePreds))], boundVar)
		case 1:
			return fmt.Sprintf("ins.%s(%s)", basePreds[r.Intn(len(basePreds))], consts[r.Intn(len(consts))])
		case 2:
			return fmt.Sprintf("del.%s(%s)", basePreds[r.Intn(len(basePreds))], consts[r.Intn(len(consts))])
		case 3:
			return "empty." + basePreds[r.Intn(len(basePreds))]
		case 4:
			return fmt.Sprintf("(%s, %s)", goal(depth-1, boundVar), goal(depth-1, boundVar))
		case 5:
			return fmt.Sprintf("(%s | %s)", goal(depth-1, boundVar), goal(depth-1, boundVar))
		case 6:
			return fmt.Sprintf("iso(%s)", goal(depth-1, boundVar))
		default:
			return rulePreds[r.Intn(len(rulePreds))]
		}
	}

	// Rules: each rule predicate gets 1–2 rules. Bodies that call rule
	// predicates may recurse; the engine's loop check and budgets must
	// cope.
	for _, rp := range rulePreds {
		for i := 0; i < 1+r.Intn(2); i++ {
			fmt.Fprintf(&b, "%s :- %s.\n", rp, goal(2, "X"))
		}
	}
	return b.String()
}

// TestEngineSoakRandomPrograms: for random programs and goals, Prove must
// never panic or corrupt state: on failure the database is bit-identical
// to the initial one; on success rerunning the same goal from the initial
// state is deterministic.
func TestEngineSoakRandomPrograms(t *testing.T) {
	if testing.Short() {
		t.Skip("soak test")
	}
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		src := genProgram(r)
		prog, err := parser.Parse(src)
		if err != nil {
			t.Logf("generator produced unparsable program: %v\n%s", err, src)
			return false
		}
		goalSrc := []string{"r0", "r1", "r2", "r0 | r1", "iso(r0), r2"}[r.Intn(5)]
		g, _, err := parser.ParseGoal(goalSrc, prog.VarHigh)
		if err != nil {
			return false
		}
		d, err := db.FromFacts(prog.Facts)
		if err != nil {
			return false
		}
		before := d.Clone()
		opts := Options{MaxSteps: 40_000, MaxDepth: 5_000, LoopCheck: true, Table: true}
		res, err := New(prog, opts).Prove(g, d)
		if err != nil {
			if errors.Is(err, ErrBudget) || errors.Is(err, ErrDepth) {
				// Truncated searches must still restore the database.
				return d.Equal(before)
			}
			var rerr *RuntimeError
			if errors.As(err, &rerr) {
				return d.Equal(before) // unsafe generated update: fine, but clean
			}
			t.Logf("seed %d: unexpected error %v\n%s", seed, err, src)
			return false
		}
		if !res.Success && !d.Equal(before) {
			t.Logf("seed %d: failed proof left changes\n%s", seed, src)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120, Rand: rand.New(rand.NewSource(1))}); err != nil {
		t.Fatal(err)
	}
}

// TestPruningSoundnessRandom: with and without pruning (loop check +
// tabling), bounded searches that complete must agree on success.
func TestPruningSoundnessRandom(t *testing.T) {
	if testing.Short() {
		t.Skip("soak test")
	}
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		src := genProgram(r)
		prog, err := parser.Parse(src)
		if err != nil {
			return false
		}
		g, _, err := parser.ParseGoal("r0", prog.VarHigh)
		if err != nil {
			return false
		}
		run := func(opts Options) (bool, bool) { // (success, completed)
			d, _ := db.FromFacts(prog.Facts)
			res, err := New(prog, opts).Prove(g, d)
			if err != nil {
				return false, false
			}
			return res.Success, true
		}
		sPruned, okP := run(Options{MaxSteps: 80_000, MaxDepth: 8_000, LoopCheck: true, Table: true})
		sRaw, okR := run(Options{MaxSteps: 80_000, MaxDepth: 8_000})
		if !okP || !okR {
			// One side was truncated (the raw side can diverge where the
			// pruned side terminates) — no verdict.
			return true
		}
		if sPruned != sRaw {
			t.Logf("seed %d: pruned=%v raw=%v\n%s", seed, sPruned, sRaw, src)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60, Rand: rand.New(rand.NewSource(2))}); err != nil {
		t.Fatal(err)
	}
}

// TestSolutionsMatchRepeatedProve: the set of Solutions' success count is
// stable across runs (determinism with deterministic scans).
func TestSolutionsDeterministic(t *testing.T) {
	src := `
		p(a). p(b).
		t :- p(X), del.p(X), ins.got(X).
	`
	prog := parser.MustParse(src)
	g := parser.MustParseGoal("t | t", prog.VarHigh)
	var first []string
	for trial := 0; trial < 3; trial++ {
		d, _ := db.FromFacts(prog.Facts)
		sols, _, err := NewDefault(prog).Solutions(g, d, 0)
		if err != nil {
			t.Fatal(err)
		}
		var got []string
		for _, s := range sols {
			got = append(got, s.Final.String())
		}
		if trial == 0 {
			first = got
			continue
		}
		if len(got) != len(first) {
			t.Fatalf("trial %d: %d solutions vs %d", trial, len(got), len(first))
		}
		for i := range got {
			if got[i] != first[i] {
				t.Fatalf("trial %d: solution %d differs", trial, i)
			}
		}
	}
}

func TestMaxDepthError(t *testing.T) {
	prog := parser.MustParse(`
		deep :- ins.x(1), deep.
	`)
	g := parser.MustParseGoal("deep", prog.VarHigh)
	d := db.New()
	_, err := New(prog, Options{MaxSteps: 1_000_000, MaxDepth: 50}).Prove(g, d)
	if !errors.Is(err, ErrDepth) {
		t.Fatalf("err = %v, want ErrDepth", err)
	}
	if d.Size() != 0 {
		t.Fatal("db not restored after depth error")
	}
}

func TestTruncatedFlagOnBudget(t *testing.T) {
	prog := parser.MustParse(`spin :- ins.a, del.a, spin.`)
	g := parser.MustParseGoal("spin", prog.VarHigh)
	d := db.New()
	res, err := New(prog, Options{MaxSteps: 100, MaxDepth: 100000}).Prove(g, d)
	if !errors.Is(err, ErrBudget) {
		t.Fatalf("err = %v", err)
	}
	if !res.Stats.Truncated {
		t.Fatal("Truncated flag not set")
	}
}

// --- Iterative deepening --------------------------------------------------

func TestProveIDFindsSuccessPastDivergingBranch(t *testing.T) {
	// The first rule of t diverges (grows the database forever); the
	// second succeeds at depth 2. Plain DFS commits to rule order and
	// burns the whole budget inside the diverging branch; iterative
	// deepening finds the success.
	src := `
		t :- diverge(0).
		t :- ins.done.
		diverge(N) :- ins.mark(N), add(N, 1, M), diverge(M).
	`
	prog := parser.MustParse(src)
	g := parser.MustParseGoal("t", prog.VarHigh)

	// Plain DFS: exhausts the budget.
	d1 := db.New()
	_, err := New(prog, Options{MaxSteps: 30_000, MaxDepth: 1_000_000}).Prove(g, d1)
	if !errors.Is(err, ErrBudget) && !errors.Is(err, ErrDepth) {
		t.Fatalf("plain DFS: err = %v, want budget/depth exhaustion", err)
	}

	// IDDFS: finds the shallow success.
	d2 := db.New()
	res, err := New(prog, Options{MaxSteps: 30_000, MaxDepth: 1_000_000}).ProveID(g, d2, 4)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Success {
		t.Fatal("IDDFS missed the shallow success")
	}
	if !d2.Contains("done", nil) {
		t.Fatal("final state wrong")
	}
}

func TestProveIDDefiniteFailure(t *testing.T) {
	// Finite space, no success: IDDFS must report failure (no error) once
	// an iteration completes without cutoffs.
	prog := parser.MustParse(`
		t :- p(zzz), ins.done.
		p(a).
	`)
	g := parser.MustParseGoal("t", prog.VarHigh)
	d, _ := db.FromFacts(prog.Facts)
	res, err := NewDefault(prog).ProveID(g, d, 4)
	if err != nil {
		t.Fatal(err)
	}
	if res.Success {
		t.Fatal("false success")
	}
}

func TestProveIDAgreesWithProve(t *testing.T) {
	src := `
		edge(a, b). edge(b, c).
		path(X, Y) :- edge(X, Y).
		path(X, Y) :- edge(X, Z), path(Z, Y).
	`
	prog := parser.MustParse(src)
	for _, goal := range []string{"path(a, c)", "path(c, a)"} {
		g := parser.MustParseGoal(goal, prog.VarHigh)
		d1, _ := db.FromFacts(prog.Facts)
		r1, err := NewDefault(prog).Prove(g, d1)
		if err != nil {
			t.Fatal(err)
		}
		d2, _ := db.FromFacts(prog.Facts)
		r2, err := NewDefault(prog).ProveID(g, d2, 2)
		if err != nil {
			t.Fatal(err)
		}
		if r1.Success != r2.Success {
			t.Fatalf("%s: DFS=%v IDDFS=%v", goal, r1.Success, r2.Success)
		}
	}
}

func TestProveIDBindingsAndBudget(t *testing.T) {
	prog := parser.MustParse(`p(a). p(b).`)
	g := parser.MustParseGoal("p(X)", prog.VarHigh)
	d, _ := db.FromFacts(prog.Facts)
	res, err := NewDefault(prog).ProveID(g, d, 1)
	if err != nil || !res.Success {
		t.Fatal(err, res)
	}
	if res.Bindings["X"].String() == "" {
		t.Fatal("no binding")
	}
	// A diverging program with no success must hit the step budget.
	prog2 := parser.MustParse(`t :- diverge(0).
		diverge(N) :- ins.mark(N), add(N, 1, M), diverge(M).`)
	g2 := parser.MustParseGoal("t", prog2.VarHigh)
	_, err = New(prog2, Options{MaxSteps: 5_000, MaxDepth: 1_000_000}).ProveID(g2, db.New(), 4)
	if !errors.Is(err, ErrBudget) {
		t.Fatalf("err = %v, want ErrBudget", err)
	}
}
