package engine

import (
	"repro/internal/analysis"
	"repro/internal/ast"
	"repro/internal/term"
)

// Planned dispatch. With Options.Plan on, New runs the tdplan analysis
// (internal/analysis.Plan) and compiles every reordered rule variant into
// a per-(predicate, adornment) dispatch table that composes with the
// first-argument clause index. At a call step the runtime adornment is the
// groundness bitmask of the call's walked arguments; an exact hit serves
// the reordered bodies, a miss falls back to the textual-order index —
// always sound, since untracked binding patterns were simply never
// planned.
//
// Reordered bodies are only semantics-preserving when the call is not
// interleaving with un-isolated concurrent siblings: a sibling's updates
// can distinguish the textual order from the planned one (a read that
// succeeds before a sibling's delete may fail after it). The search
// therefore tracks a per-descent taint flag — set while stepping the
// children of a '|' composition, cleared on every fresh descent and
// inside iso bodies, which are atomic and safe to plan — and tainted call
// steps use textual order. See deriv.go's concTaint.

// planMaxArity bounds the argument count a runtime adornment bitmask can
// represent; calls with more arguments are never planned.
const planMaxArity = 30

// planIndex maps (predicate, arity) → adornment bitmask → the dispatch
// entry compiled from that variant's reordered rules.
type planIndex struct {
	byPred map[enginePredArity]map[uint32]*predClauses
}

// adornMask converts an analysis adornment string to its bitmask: bit i
// set iff argument i is bound.
func adornMask(ad string) uint32 {
	var m uint32
	for i := 0; i < len(ad); i++ {
		if ad[i] == 'b' {
			m |= 1 << uint(i)
		}
	}
	return m
}

// compilePlan builds the planned dispatch table from the report's rule
// variants. nil when the planner found nothing to reorder.
func compilePlan(rep *analysis.PlanReport) *planIndex {
	variants := rep.Variants()
	if len(variants) == 0 {
		return nil
	}
	pi := &planIndex{byPred: make(map[enginePredArity]map[uint32]*predClauses)}
	for _, v := range variants {
		if v.Arity > planMaxArity {
			continue
		}
		k := enginePredArity{pred: v.Pred, arity: v.Arity}
		inner := pi.byPred[k]
		if inner == nil {
			inner = make(map[uint32]*predClauses)
			pi.byPred[k] = inner
		}
		pc := newPredClauses(v.Arity)
		for _, r := range v.Rules {
			pc.add(r)
		}
		inner[adornMask(v.Adornment)] = pc
	}
	if len(pi.byPred) == 0 {
		return nil
	}
	return pi
}

// plannedRules returns the planned candidate rules for a call, and whether
// a variant matched the call's runtime adornment exactly. On a miss the
// caller uses the textual-order index.
func (pi *planIndex) plannedRules(pred string, args []term.Term, env *term.Env) ([]ast.Rule, bool) {
	if len(args) > planMaxArity {
		return nil, false
	}
	inner := pi.byPred[enginePredArity{pred: pred, arity: len(args)}]
	if inner == nil {
		return nil, false
	}
	var mask uint32
	for i, t := range args {
		if !env.Walk(t).IsVar() {
			mask |= 1 << uint(i)
		}
	}
	pc := inner[mask]
	if pc == nil {
		return nil, false
	}
	return pc.pick(args, env), true
}
