package engine

// A deliberately naive reference implementation of TD's executional
// entailment, used only for differential testing: breadth-first search
// over explicitly copied configurations, no environment trail, no undo
// log, no tabling, no cleverness. Its one job is to be obviously correct
// on small inputs so the optimized engine can be checked against it.
//
// Reference restrictions (checked by the generator): ground programs only
// (no variables), no builtins. Goals are propositional compositions of
// elementary operations and calls — enough to exercise the interleaving,
// isolation, rollback, and rule-choice semantics where the optimized
// engine's bugs would live.

import (
	"errors"
	"fmt"
	"math/rand"
	"sort"
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/ast"
	"repro/internal/db"
	"repro/internal/parser"
	"repro/internal/term"
)

// refState is a database as a sorted set of rendered atoms.
type refState map[string]bool

func refStateOf(d *db.DB) refState {
	s := refState{}
	for _, a := range d.Atoms() {
		s[a.String()] = true
	}
	return s
}

func (s refState) clone() refState {
	out := make(refState, len(s))
	for k := range s {
		out[k] = true
	}
	return out
}

func (s refState) key() string {
	keys := make([]string, 0, len(s))
	for k := range s {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return strings.Join(keys, "|")
}

// refGoal is a propositional goal tree.
type refGoal interface{ isRef() }

type refTrue struct{}
type refIns struct{ atom string }
type refDel struct{ atom string }
type refQry struct{ atom string }
type refEmpty struct{ pred string }
type refCall struct{ name string }
type refSeq struct{ goals []refGoal }
type refConc struct{ goals []refGoal }
type refIso struct{ body refGoal }

func (refTrue) isRef()  {}
func (refIns) isRef()   {}
func (refDel) isRef()   {}
func (refQry) isRef()   {}
func (refEmpty) isRef() {}
func (refCall) isRef()  {}
func (refSeq) isRef()   {}
func (refConc) isRef()  {}
func (refIso) isRef()   {}

// refProgram maps rule names to alternative bodies.
type refProgram map[string][]refGoal

// refRun decides whether goal has a committing execution from state s,
// and returns the set of reachable final-state keys. Pure recursion with
// copied states; exponential and proud of it. The fuel bounds pathological
// recursion (generated programs keep it small).
func refRun(p refProgram, g refGoal, s refState, fuel *int) (finals map[string]refState) {
	finals = map[string]refState{}
	if *fuel <= 0 {
		return finals
	}
	*fuel--
	switch g := g.(type) {
	case refTrue:
		finals[s.key()] = s
	case refIns:
		ns := s.clone()
		ns[g.atom] = true
		finals[ns.key()] = ns
	case refDel:
		ns := s.clone()
		delete(ns, g.atom)
		finals[ns.key()] = ns
	case refQry:
		if s[g.atom] {
			finals[s.key()] = s
		}
	case refEmpty:
		for a := range s {
			if strings.HasPrefix(a, g.pred+"(") || a == g.pred {
				return finals
			}
		}
		finals[s.key()] = s
	case refCall:
		for _, body := range p[g.name] {
			for k, f := range refRun(p, body, s, fuel) {
				finals[k] = f
			}
		}
	case refSeq:
		if len(g.goals) == 0 {
			finals[s.key()] = s
			return finals
		}
		for _, mid := range refRun(p, g.goals[0], s, fuel) {
			for k, f := range refRun(p, refSeq{g.goals[1:]}, mid, fuel) {
				finals[k] = f
			}
		}
	case refConc:
		// Interleave exactly: enumerate every ordering by stepping
		// components one elementary step at a time (refConcRun/refStep).
		for k, f := range refConcRun(p, g.goals, s, fuel) {
			finals[k] = f
		}
	case refIso:
		for k, f := range refRun(p, g.body, s, fuel) {
			finals[k] = f
		}
	}
	return finals
}

// refConcRun interleaves components by brute force: a configuration is a
// list of residual goals plus a state; every enabled component's every
// single-step successor is explored, with NO pruning of revisited
// configurations — the reference must not share the optimized engine's
// pruning theory. Generated programs are acyclic, so this terminates
// (fuel backstops it regardless).
func refConcRun(p refProgram, goals []refGoal, s refState, fuel *int) map[string]refState {
	finals := map[string]refState{}
	var rec func(goals []refGoal, s refState)
	rec = func(goals []refGoal, s refState) {
		if *fuel <= 0 {
			return
		}
		*fuel--
		live := goals[:0:0]
		for _, g := range goals {
			if _, done := g.(refTrue); !done {
				live = append(live, g)
			}
		}
		if len(live) == 0 {
			finals[s.key()] = s
			return
		}
		for i, g := range live {
			for _, succ := range refStep(p, g, s, fuel) {
				next := append(append([]refGoal{}, live[:i]...), live[i+1:]...)
				if _, done := succ.residual.(refTrue); !done {
					next = append(next, succ.residual)
				}
				rec(next, succ.state)
			}
		}
	}
	rec(goals, s)
	return finals
}

type refSucc struct {
	residual refGoal
	state    refState
}

// refStep enumerates single-step successors of one component.
func refStep(p refProgram, g refGoal, s refState, fuel *int) []refSucc {
	if *fuel <= 0 {
		return nil
	}
	*fuel--
	switch g := g.(type) {
	case refTrue:
		return nil
	case refIns:
		ns := s.clone()
		ns[g.atom] = true
		return []refSucc{{refTrue{}, ns}}
	case refDel:
		ns := s.clone()
		delete(ns, g.atom)
		return []refSucc{{refTrue{}, ns}}
	case refQry:
		if s[g.atom] {
			return []refSucc{{refTrue{}, s}}
		}
		return nil
	case refEmpty:
		for a := range s {
			if strings.HasPrefix(a, g.pred+"(") || a == g.pred {
				return nil
			}
		}
		return []refSucc{{refTrue{}, s}}
	case refCall:
		var out []refSucc
		for _, body := range p[g.name] {
			out = append(out, refSucc{body, s})
		}
		return out
	case refSeq:
		if len(g.goals) == 0 {
			return []refSucc{{refTrue{}, s}}
		}
		var out []refSucc
		for _, succ := range refStep(p, g.goals[0], s, fuel) {
			rest := g.goals[1:]
			if _, done := succ.residual.(refTrue); done {
				out = append(out, refSucc{refSeq{rest}, succ.state})
			} else {
				out = append(out, refSucc{refSeq{append([]refGoal{succ.residual}, rest...)}, succ.state})
			}
		}
		return out
	case refConc:
		var out []refSucc
		for i, sub := range g.goals {
			for _, succ := range refStep(p, sub, s, fuel) {
				next := append(append([]refGoal{}, g.goals[:i]...), g.goals[i+1:]...)
				if _, done := succ.residual.(refTrue); !done {
					next = append(next, succ.residual)
				}
				if len(next) == 0 {
					out = append(out, refSucc{refTrue{}, succ.state})
				} else {
					out = append(out, refSucc{refConc{next}, succ.state})
				}
			}
		}
		return out
	case refIso:
		// One macro-step per complete body execution.
		var out []refSucc
		for _, f := range refRun(p, g.body, s, fuel) {
			out = append(out, refSucc{refTrue{}, f})
		}
		return out
	}
	return nil
}

// --- generator ---------------------------------------------------------------

// genGround produces matching (TD source, reference program, reference
// goal) triples: ground propositional programs.
func genGround(r *rand.Rand) (src string, rp refProgram, names []string) {
	atoms := []string{"a", "b", "c"}
	ruleNames := []string{"r0", "r1"}
	rp = refProgram{}
	var b strings.Builder

	var gen func(depth int) (string, refGoal)
	gen = func(depth int) (string, refGoal) {
		if depth <= 0 {
			a := atoms[r.Intn(len(atoms))]
			switch r.Intn(3) {
			case 0:
				return "ins." + a, refIns{a}
			case 1:
				return "del." + a, refDel{a}
			default:
				return a, refQry{a}
			}
		}
		switch r.Intn(8) {
		case 0:
			a := atoms[r.Intn(len(atoms))]
			return "ins." + a, refIns{a}
		case 1:
			a := atoms[r.Intn(len(atoms))]
			return "del." + a, refDel{a}
		case 2:
			a := atoms[r.Intn(len(atoms))]
			return a, refQry{a}
		case 3:
			a := atoms[r.Intn(len(atoms))]
			return "empty." + a, refEmpty{a}
		case 4:
			s1, g1 := gen(depth - 1)
			s2, g2 := gen(depth - 1)
			return "(" + s1 + ", " + s2 + ")", refSeq{[]refGoal{g1, g2}}
		case 5:
			s1, g1 := gen(depth - 1)
			s2, g2 := gen(depth - 1)
			return "(" + s1 + " | " + s2 + ")", refConc{[]refGoal{g1, g2}}
		case 6:
			s1, g1 := gen(depth - 1)
			return "iso(" + s1 + ")", refIso{g1}
		default:
			// Call a rule from the FIRST half only (r0 may call r1, r1 may
			// not call back) — keeps the reference's fuel finite.
			n := ruleNames[1]
			return n, refCall{n}
		}
	}

	// Initial facts.
	for _, a := range atoms {
		if r.Intn(2) == 0 {
			fmt.Fprintf(&b, "%s.\n", a)
		}
	}
	facts := b.String()

	var rules strings.Builder
	for i, rn := range ruleNames {
		nBodies := 1 + r.Intn(2)
		for k := 0; k < nBodies; k++ {
			depth := 2
			if i == 1 {
				depth = 1 // r1 bodies are shallow and call nothing
			}
			var srcBody string
			var refBody refGoal
			if i == 1 {
				srcBody, refBody = genLeafComposite(r, atoms)
			} else {
				srcBody, refBody = gen(depth)
			}
			fmt.Fprintf(&rules, "%s :- %s.\n", rn, srcBody)
			rp[rn] = append(rp[rn], refBody)
		}
	}
	return facts + rules.String(), rp, ruleNames
}

// genLeafComposite builds call-free bodies for the leaf rule.
func genLeafComposite(r *rand.Rand, atoms []string) (string, refGoal) {
	leaf := func() (string, refGoal) {
		a := atoms[r.Intn(len(atoms))]
		switch r.Intn(3) {
		case 0:
			return "ins." + a, refIns{a}
		case 1:
			return "del." + a, refDel{a}
		default:
			return a, refQry{a}
		}
	}
	s1, g1 := leaf()
	s2, g2 := leaf()
	if r.Intn(2) == 0 {
		return "(" + s1 + ", " + s2 + ")", refSeq{[]refGoal{g1, g2}}
	}
	return "(" + s1 + " | " + s2 + ")", refConc{[]refGoal{g1, g2}}
}

// TestEngineAgainstReference: for random ground programs, the optimized
// engine's set of reachable final databases must equal the naive reference
// interpreter's.
func TestEngineAgainstReference(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		src, rp, ruleNames := genGround(r)
		prog, err := parser.Parse(src)
		if err != nil {
			t.Logf("unparsable generated program: %v\n%s", err, src)
			return false
		}
		goalName := ruleNames[0]
		g, _, err := parser.ParseGoal(goalName, prog.VarHigh)
		if err != nil {
			return false
		}
		d, err := db.FromFacts(prog.Facts)
		if err != nil {
			return false
		}

		// Reference.
		fuel := 150_000
		refFinals := refRun(rp, refCall{goalName}, refStateOf(d), &fuel)
		if fuel <= 0 {
			return true // reference ran out of fuel: no verdict
		}

		// Optimized engine. The budget is modest: generated programs with
		// huge interleaving spaces are skipped (no verdict) rather than
		// ground through — the 120 retained cases exercise every operator.
		sols, _, err := New(prog, Options{MaxSteps: 400_000, MaxDepth: 50_000, LoopCheck: true, Table: true}).Solutions(g, d, 0)
		if errors.Is(err, ErrBudget) || errors.Is(err, ErrDepth) {
			return true // truncated: no verdict
		}
		if err != nil {
			t.Logf("seed %d: engine error %v\n%s", seed, err, src)
			return false
		}
		engFinals := map[string]bool{}
		for _, s := range sols {
			engFinals[refStateOf(s.Final).key()] = true
		}
		if len(engFinals) != len(refFinals) {
			t.Logf("seed %d: engine %d finals, reference %d\nengine: %v\nref: %v\nprogram:\n%s",
				seed, len(engFinals), len(refFinals), keysOf(engFinals), keysOfStates(refFinals), src)
			return false
		}
		for k := range refFinals {
			if !engFinals[k] {
				t.Logf("seed %d: reference final %q missing from engine\n%s", seed, k, src)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120, Rand: rand.New(rand.NewSource(3))}); err != nil {
		t.Fatal(err)
	}
}

func keysOf(m map[string]bool) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

func keysOfStates(m map[string]refState) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// Keep ast import meaningful for the build when generators shift.
var _ = ast.True{}
var _ = term.NewSym

// Sanity checks of the reference interpreter itself on hand-computed
// cases, so the differential test's oracle is itself tested.
func TestReferenceHandCases(t *testing.T) {
	fuel := func() *int { f := 100000; return &f }

	// ins.a | del.a from {}: both orders → finals {a} and {}.
	g := refConc{[]refGoal{refIns{"a"}, refDel{"a"}}}
	finals := refRun(refProgram{}, g, refState{}, fuel())
	if len(finals) != 2 {
		t.Fatalf("conc finals = %v", keysOfStates(finals))
	}

	// (a ⊗ del.a) from {a}: succeeds with {}; from {}: no finals.
	g2 := refSeq{[]refGoal{refQry{"a"}, refDel{"a"}}}
	if got := refRun(refProgram{}, g2, refState{"a": true}, fuel()); len(got) != 1 {
		t.Fatalf("seq finals = %v", keysOfStates(got))
	}
	if got := refRun(refProgram{}, g2, refState{}, fuel()); len(got) != 0 {
		t.Fatalf("seq-from-empty finals = %v", keysOfStates(got))
	}

	// iso((ins.a ⊗ del.a)) | (a ⊗ ins.saw): the spy can never see a.
	spy := refSeq{[]refGoal{refQry{"a"}, refIns{"saw"}}}
	flick := refIso{refSeq{[]refGoal{refIns{"a"}, refDel{"a"}}}}
	if got := refRun(refProgram{}, refConc{[]refGoal{flick, spy}}, refState{}, fuel()); len(got) != 0 {
		t.Fatalf("iso leak: %v", keysOfStates(got))
	}
	// Without iso, the spy can interleave between ins and del.
	flickBare := refSeq{[]refGoal{refIns{"a"}, refDel{"a"}}}
	if got := refRun(refProgram{}, refConc{[]refGoal{flickBare, spy}}, refState{}, fuel()); len(got) == 0 {
		t.Fatal("bare interleaving found no success")
	}

	// Rule disjunction: r ← ins.a; r ← ins.b gives two finals.
	rp := refProgram{"r": {refGoal(refIns{"a"}), refGoal(refIns{"b"})}}
	if got := refRun(rp, refCall{"r"}, refState{}, fuel()); len(got) != 2 {
		t.Fatalf("rule choice finals = %v", keysOfStates(got))
	}

	// empty test: succeeds on empty relation, fails otherwise, matches
	// both nullary atoms and compound atoms of that predicate.
	if got := refRun(refProgram{}, refEmpty{"p"}, refState{}, fuel()); len(got) != 1 {
		t.Fatal("empty on empty failed")
	}
	if got := refRun(refProgram{}, refEmpty{"p"}, refState{"p": true}, fuel()); len(got) != 0 {
		t.Fatal("empty on nullary atom passed")
	}
	if got := refRun(refProgram{}, refEmpty{"p"}, refState{"p(a)": true}, fuel()); len(got) != 0 {
		t.Fatal("empty on compound atom passed")
	}
}

// TestReferenceWouldCatchWrongEngine plants a deliberate discrepancy: the
// engine run WITHOUT one of the bare interleaving orders (simulated by
// comparing against a reference final set with one state removed) must be
// flagged. This guards against the differential test silently comparing
// empty sets.
func TestReferenceDifferentialPower(t *testing.T) {
	r := rand.New(rand.NewSource(77))
	nonTrivial := 0
	for i := 0; i < 120; i++ {
		src, rp, ruleNames := genGround(r)
		prog, err := parser.Parse(src)
		if err != nil {
			t.Fatal(err)
		}
		d, _ := db.FromFacts(prog.Facts)
		fuel := 400000
		finals := refRun(rp, refCall{ruleNames[0]}, refStateOf(d), &fuel)
		if len(finals) > 1 {
			nonTrivial++
		}
	}
	if nonTrivial < 20 {
		t.Fatalf("generator too weak: only %d/120 programs had multiple finals", nonTrivial)
	}
}
