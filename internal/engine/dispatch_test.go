package engine

import (
	"fmt"
	"path/filepath"
	"sort"
	"testing"

	"repro/internal/ast"
	"repro/internal/db"
	"repro/internal/parser"
	"repro/internal/term"
)

// First-argument dispatch must be invisible: for every paper example the
// answer sets AND the witness traces must be identical with the clause
// index on versus the linear-scan fallback. This is the semantic safety
// net for the compiled clause table — dispatch may only skip rules whose
// head could never have unified anyway, and must preserve source order
// among the rules it does try.

// dispatchQueries lists, per example program, extra goals that exercise
// enumeration and unbound-first-argument calls (where the index must fall
// back to the full rule list).
var dispatchQueries = map[string][]string{
	"bank.td": {
		"transfer(30, alice, bob)",
		"balance(A, B)",             // unbound first arg: catch-all path
		"withdraw(60, alice)",       // bound first arg, constant buckets
		"transfer(200, alice, bob)", // must fail identically
	},
	"sync.td": {
		"measure(part1) | verifyp(part1)",
		"measure(p2), verifyp(p2)",
	},
	"workflow.td": {
		"simulate",
		"flow(w1)",
		"newitem(X)",
	},
}

func loadExample(t *testing.T, name string) *ast.Program {
	t.Helper()
	prog, err := parser.ParseFile(filepath.Join("..", "..", "testdata", name))
	if err != nil {
		t.Fatalf("parse %s: %v", name, err)
	}
	return prog
}

func freshDB(t *testing.T, prog *ast.Program) *db.DB {
	t.Helper()
	d, err := db.FromFacts(prog.Facts)
	if err != nil {
		t.Fatal(err)
	}
	return d
}

// runProve executes goal under the given index setting and returns the
// observable outcome: success, witness bindings, witness trace, the span
// tree rendering, and the final database fingerprint.
func runProve(t *testing.T, prog *ast.Program, g ast.Goal, noIndex bool) (bool, string, []string, string, [2]uint64) {
	t.Helper()
	opts := DefaultOptions()
	opts.Trace = true
	opts.NoClauseIndex = noIndex
	d := freshDB(t, prog)
	res, err := New(prog, opts).Prove(g, d)
	if err != nil {
		t.Fatalf("prove (noIndex=%v): %v", noIndex, err)
	}
	var trace []string
	for _, e := range res.Trace {
		trace = append(trace, e.String())
	}
	spans := ""
	if res.Spans != nil {
		spans = res.Spans.Tree()
	}
	return res.Success, renderBindings(res.Bindings), trace, spans, d.Fingerprint()
}

// renderBindings renders a bindings map in deterministic name order.
func renderBindings(b map[string]term.Term) string {
	names := make([]string, 0, len(b))
	for n := range b {
		names = append(names, n)
	}
	sort.Strings(names)
	out := ""
	for _, n := range names {
		out += n + "=" + b[n].String() + " "
	}
	return out
}

func TestDispatchEquivalenceOnPaperExamples(t *testing.T) {
	for file, goals := range dispatchQueries {
		prog := loadExample(t, file)
		// The example's own ?- directives run first, then the extra goals.
		var allGoals []ast.Goal
		allGoals = append(allGoals, prog.Queries...)
		varHigh := prog.VarHigh
		for _, src := range goals {
			g, vh, err := parser.ParseGoal(src, varHigh)
			if err != nil {
				t.Fatalf("%s: parse goal %q: %v", file, src, err)
			}
			varHigh = vh
			allGoals = append(allGoals, g)
		}
		for i, g := range allGoals {
			name := fmt.Sprintf("%s/goal%d", file, i)
			t.Run(name, func(t *testing.T) {
				okIdx, bIdx, trIdx, spIdx, fpIdx := runProve(t, prog, g, false)
				okLin, bLin, trLin, spLin, fpLin := runProve(t, prog, g, true)
				if okIdx != okLin {
					t.Fatalf("success differs: index=%v linear=%v", okIdx, okLin)
				}
				if bIdx != bLin {
					t.Fatalf("witness bindings differ:\n index: %s\n linear: %s", bIdx, bLin)
				}
				if len(trIdx) != len(trLin) {
					t.Fatalf("trace lengths differ: index=%d linear=%d\n index: %v\n linear: %v",
						len(trIdx), len(trLin), trIdx, trLin)
				}
				for j := range trIdx {
					if trIdx[j] != trLin[j] {
						t.Fatalf("trace step %d differs: index=%s linear=%s", j, trIdx[j], trLin[j])
					}
				}
				// Span trees — including the stable branch ids assigned
				// during the search — must be identical: dispatch preserves
				// both the witness path and its branch attribution.
				if spIdx != spLin {
					t.Fatalf("span trees differ:\n index:\n%s\n linear:\n%s", spIdx, spLin)
				}
				if fpIdx != fpLin {
					t.Fatalf("final database fingerprints differ: index=%x linear=%x", fpIdx, fpLin)
				}
			})
		}
	}
}

// answerSetCap bounds enumeration: recursive workflow examples ("simulate"
// composes flows with |) have combinatorially many successful interleavings,
// so comparing a deterministic prefix of the enumeration is the tractable —
// and still order-sensitive — equivalence check.
const answerSetCap = 64

// answerSet enumerates up to answerSetCap solutions of g and returns a
// rendering of each solution's bindings plus its final-state fingerprint,
// in enumeration order.
func answerSet(t *testing.T, prog *ast.Program, g ast.Goal, noIndex bool) []string {
	t.Helper()
	opts := DefaultOptions()
	opts.NoClauseIndex = noIndex
	sols, _, err := New(prog, opts).Solutions(g, freshDB(t, prog), answerSetCap)
	if err != nil {
		t.Fatalf("solutions (noIndex=%v): %v", noIndex, err)
	}
	out := make([]string, 0, len(sols))
	for _, s := range sols {
		names := make([]string, 0, len(s.Bindings))
		for n := range s.Bindings {
			names = append(names, n)
		}
		sort.Strings(names)
		r := ""
		for _, n := range names {
			r += n + "=" + s.Bindings[n].String() + " "
		}
		r += fmt.Sprintf("| fp=%x", s.Final.Fingerprint())
		out = append(out, r)
	}
	return out
}

func TestDispatchEquivalentAnswerSets(t *testing.T) {
	for file, goals := range dispatchQueries {
		prog := loadExample(t, file)
		varHigh := prog.VarHigh
		for _, src := range goals {
			g, vh, err := parser.ParseGoal(src, varHigh)
			if err != nil {
				t.Fatalf("%s: parse goal %q: %v", file, src, err)
			}
			varHigh = vh
			t.Run(file+"/"+src, func(t *testing.T) {
				idx := answerSet(t, prog, g, false)
				lin := answerSet(t, prog, g, true)
				if len(idx) != len(lin) {
					t.Fatalf("answer counts differ: index=%d linear=%d", len(idx), len(lin))
				}
				// Solutions enumerate in identical order when dispatch is
				// order-preserving, so compare positionally.
				for i := range idx {
					if idx[i] != lin[i] {
						t.Fatalf("answer %d differs:\n index: %s\n linear: %s", i, idx[i], lin[i])
					}
				}
			})
		}
	}
}
