// Banking: Examples 2.1 and 2.2 of the paper — money transfer as a nested
// transaction, relative commit (a failing withdraw aborts the deposit that
// already "happened"), and serializable concurrent transfers via the
// isolation modality.
package main

import (
	"fmt"
	"log"

	td "repro"
)

const bank = `
	account(alice, 100).
	account(bob, 50).
	account(carol, 75).

	balance(A, B) :- account(A, B).
	change_balance(A, B1, B2) :- del.account(A, B1), ins.account(A, B2).

	% Example 2.1: withdraw has a precondition — enough funds.
	withdraw(Amt, A) :- balance(A, B), B >= Amt, sub(B, Amt, C), change_balance(A, B, C).
	deposit(Amt, A)  :- balance(A, B), add(B, Amt, C), change_balance(A, B, C).

	% Example 2.2: transfer is a nested transaction of two subtransactions.
	transfer(Amt, A, B) :- withdraw(Amt, A), deposit(Amt, B).
`

func total(d *td.Database) int64 {
	var sum int64
	for _, row := range d.Tuples("account", 2) {
		sum += row[1].IntVal()
	}
	return sum
}

func main() {
	// A successful transfer.
	res, final, err := td.Run(bank, `transfer(30, alice, bob)`)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("transfer(30, alice, bob):", res.Success)
	fmt.Print(final)
	fmt.Println("total money:", total(final))

	// Example 2.2's point: the withdraw fails (insufficient funds), so the
	// WHOLE transfer aborts — "the failure of one implies the failure of
	// the other, even if the other has completed its execution".
	res, final, err = td.Run(bank, `transfer(500, alice, bob)`)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\ntransfer(500, alice, bob):", res.Success, "(aborted, database unchanged)")
	fmt.Print(final)

	// Concurrent isolated transfers: iso(t1) | iso(t2) | iso(t3) executes
	// them serializably (Section 2); money is conserved on every path.
	goal := `iso(transfer(10, alice, bob)) | iso(transfer(20, bob, carol)) | iso(transfer(5, carol, alice))`
	res, final, err = td.Run(bank, goal)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nthree concurrent isolated transfers:", res.Success)
	fmt.Print(final)
	fmt.Println("total money:", total(final))

	// Enumerate every reachable outcome of two UNisolated read-modify-write
	// increments: the lost-update anomaly is among them — which is exactly
	// why the paper's iso modality matters.
	prog := td.MustParse(`
		counter(0).
		bump :- counter(N), del.counter(N), add(N, 1, M), ins.counter(M).
	`)
	g, _, err := td.ParseGoal(`bump | bump`, prog.VarHigh)
	if err != nil {
		log.Fatal(err)
	}
	d, err := td.DatabaseFor(prog)
	if err != nil {
		log.Fatal(err)
	}
	sols, _, err := td.NewDefaultEngine(prog).Solutions(g, d, 0)
	if err != nil {
		log.Fatal(err)
	}
	finals := map[int64]bool{}
	for _, s := range sols {
		for _, row := range s.Final.Tuples("counter", 1) {
			finals[row[0].IntVal()] = true
		}
	}
	fmt.Println("\nreachable finals of two unisolated bumps:", finals)
	fmt.Println("(counter = 1 is the classic lost update; wrap the bumps in iso() to exclude it)")
}
