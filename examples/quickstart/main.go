// Quickstart: parse a Transaction Datalog program, prove a transaction,
// and inspect the resulting database — the smallest end-to-end use of the
// public API.
package main

import (
	"fmt"
	"log"

	td "repro"
)

func main() {
	// A tiny phone book with an update transaction: change(Name, New)
	// replaces Name's number. The rule body is a sequential composition:
	// query the old tuple, delete it, insert the new one. If any step
	// fails (e.g. unknown name), the whole transaction fails and the
	// database is untouched.
	const src = `
		tel(mary, 1234).
		tel(bob, 5678).

		change(Name, New) :- tel(Name, Old), del.tel(Name, Old), ins.tel(Name, New).
	`

	res, final, err := td.Run(src, `change(mary, 4321)`)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("committed:", res.Success)
	fmt.Println("final database:")
	fmt.Print(final)

	// A failing transaction rolls back: nothing changes.
	res2, final2, err := td.Run(src, `change(nobody, 1)`)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nchange(nobody, 1) committed:", res2.Success)
	fmt.Println("database after the failed transaction:")
	fmt.Print(final2)

	// Queries bind variables; the result carries the witness bindings.
	res3, _, err := td.Run(src, `tel(bob, N)`)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nbob's number:", res3.Bindings["N"])

	// Static analysis: where does this program sit in the paper's
	// complexity landscape?
	prog := td.MustParse(src)
	rep := td.Classify(prog)
	fmt.Println("\nfragment:", rep.Fragment)
	fmt.Println("data complexity:", rep.Fragment.Complexity())
}
