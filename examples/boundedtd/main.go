// Boundedtd: Section 5's practical fragment. Fully bounded TD restricts
// recursion to sequential tail recursion — iteration — so workflows can
// still "be executed over-and-over again until some condition is
// satisfied" (the iterated lab protocol), while the process tree stays
// bounded by the goal. The same fragment still expresses guess-and-check
// search (SAT), so the worst case is an exponential SEARCH tree — but the
// practical workloads stay polynomial.
package main

import (
	"fmt"
	"log"
	"strings"

	td "repro"
	"repro/internal/machine"
)

func main() {
	// The iterated protocol: repeat an experiment for every queued sample
	// until the queue is empty. Sequential tail recursion — the Section 5
	// shape.
	iterated := `
		protocol(X) :- ins.prepped(X), ins.measured(X, 42), ins.finished(X).
		drain :- todo(X), del.todo(X), protocol(X), drain.
		drain :- empty.todo.
	`
	prog := td.MustParse(iterated)
	rep := td.Classify(prog)
	fmt.Println("iterated protocol fragment:", rep.Fragment)
	fmt.Println("  ", rep.Fragment.Complexity())

	var b strings.Builder
	b.WriteString(iterated)
	for i := 1; i <= 10; i++ {
		fmt.Fprintf(&b, "todo(sample%d).\n", i)
	}
	res, final, err := td.Run(b.String(), "drain")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("drained 10 samples: committed=%v, %d finished, %d steps\n\n",
		res.Success, final.Count("finished", 1), res.Stats.Steps)

	// The guess-and-check side: the SAME fixed fully bounded program
	// decides SAT of a CNF supplied as data.
	satProg := td.MustParse(machine.SATRules)
	fmt.Println("SAT program fragment:", td.Classify(satProg).Fragment)
	fmt.Print(machine.SATRules)

	// A satisfiable formula: (x1 ∨ x2) ∧ (¬x1 ∨ x2) ∧ (¬x2 ∨ x3).
	cnf := &machine.CNF{N: 3, Clauses: [][]machine.Lit{
		{{Var: 1}, {Var: 2}},
		{{Var: 1, Neg: true}, {Var: 2}},
		{{Var: 2, Neg: true}, {Var: 3}},
	}}
	facts, err := machine.SATFacts(cnf)
	if err != nil {
		log.Fatal(err)
	}
	res, final, err = td.Run(machine.SATRules+facts, machine.SATGoal)
	if err != nil {
		log.Fatal(err)
	}
	_, oracle := cnf.BruteForce()
	fmt.Printf("TD says satisfiable=%v, brute-force oracle says %v\n", res.Success, oracle)
	fmt.Println("witness assignment found by the TD engine:")
	for _, row := range final.Tuples("asg", 2) {
		fmt.Printf("  x%s = %s\n", row[0], row[1])
	}

	// An unsatisfiable one: pigeonhole(2) — 3 pigeons, 2 holes.
	ph := machine.PigeonholeCNF(2)
	facts, err = machine.SATFacts(ph)
	if err != nil {
		log.Fatal(err)
	}
	res, _, err = td.Run(machine.SATRules+facts, machine.SATGoal)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\npigeonhole(2) satisfiable per TD: %v (search exhausted %d steps — the exponential lives in the search tree, not the process tree)\n",
		res.Success, res.Stats.Steps)
}
