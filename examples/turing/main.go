// Turing: the RE-completeness construction of Theorem 4.4 / Corollary 4.6,
// run for real. A two-stack machine (Turing-complete) is compiled into a
// Transaction Datalog program of exactly three concurrent sequential
// processes — the finite control and one process per stack — where each
// stack lives in the recursion depth of its process and all communication
// happens through the database.
package main

import (
	"fmt"
	"log"

	td "repro"
	"repro/internal/machine"
)

func main() {
	// The Dyck machine recognizes balanced brackets — the canonical
	// non-regular language, so a finite-state process cannot do this; the
	// stack process's recursion depth is doing real work.
	m := machine.Dyck()
	compiled, err := machine.Compile(m)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("two-stack machine 'dyck' compiled to TD:")
	fmt.Println(compiled.RulesSrc)

	// Where does the compiled program sit in the complexity landscape?
	prog := td.MustParse(compiled.RulesSrc)
	rep := td.Classify(prog)
	fmt.Println("fragment:", rep.Fragment, "—", rep.Fragment.Complexity())
	fmt.Println()

	// Run it on several inputs and compare against the direct machine
	// simulator. The input word is pure data (inp/succ/lastinp facts):
	// the program is fixed — this is data complexity in action.
	inputs := [][]string{
		{},
		{"l", "r"},
		{"l", "l", "r", "r"},
		{"l", "r", "r"},
		{"r", "l"},
		machine.Nested(4),
	}
	for _, input := range inputs {
		simRes, err := m.Run(input, 100000)
		if err != nil {
			log.Fatal(err)
		}
		src, goal, err := machine.Source(m, input)
		if err != nil {
			log.Fatal(err)
		}
		res, _, err := td.Run(src, goal)
		if err != nil {
			log.Fatal(err)
		}
		agree := "AGREE"
		if res.Success != simRes.Accepted {
			agree = "MISMATCH"
		}
		fmt.Printf("input %-24v machine=%-5v TD=%-5v %s (%d TD steps)\n",
			input, simRes.Accepted, res.Success, agree, res.Stats.Steps)
	}

	// And the flip side of RE-power: a diverging machine. Its TD
	// simulation cannot terminate either; the engine's step budget is the
	// only way out — exactly what undecidability predicts.
	div := machine.Diverge()
	src, goal, err := machine.Source(div, nil)
	if err != nil {
		log.Fatal(err)
	}
	prog2 := td.MustParse(src)
	g, _, err := td.ParseGoal(goal, prog2.VarHigh)
	if err != nil {
		log.Fatal(err)
	}
	d, err := td.DatabaseFor(prog2)
	if err != nil {
		log.Fatal(err)
	}
	eng := td.NewEngine(prog2, td.EngineOptions{MaxSteps: 50_000, LoopCheck: true, Table: true})
	_, err = eng.Prove(g, d)
	fmt.Printf("\ndiverging machine under a 50k-step budget: %v\n", err)
}
