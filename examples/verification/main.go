// Verification: using the proof-theoretic engine as an exhaustive workflow
// verifier — check an invariant over EVERY reachable database state of
// every interleaving, and decide serializability of concurrent
// transactions. This is the analysis direction the paper's related work
// (Davulcu–Kifer et al.) develops on top of Transaction Datalog.
package main

import (
	"fmt"
	"log"

	td "repro"
)

func main() {
	// The shared-agent idiom from Example 3.3, WITHOUT isolation. Under
	// pure TD semantics this is racy: deleting an absent tuple silently
	// succeeds, so two processes can both see available(a1) before either
	// consumes it.
	racy := td.MustParse(`
		available(a1).
		job(W) :- available(A), del.available(A), ins.busy(A, W),
		          del.busy(A, W), ins.done(W), ins.available(A).
	`)
	goal, _, err := td.ParseGoal(`job(w1) | job(w2)`, racy.VarHigh)
	if err != nil {
		log.Fatal(err)
	}
	d, err := td.DatabaseFor(racy)
	if err != nil {
		log.Fatal(err)
	}
	capacity := func(d *td.Database) error {
		if n := d.Count("busy", 2); n > 1 {
			return fmt.Errorf("%d agents busy, pool holds 1", n)
		}
		return nil
	}
	res, err := td.CheckInvariant(racy, goal, d, capacity, td.EngineOptions{LoopCheck: true, Table: true})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("bare test-and-consume: capacity invariant holds =", res.Holds)
	if !res.Holds {
		fmt.Println("counterexample interleaving:")
		for _, e := range res.Violation.Trace {
			fmt.Println("   ", e)
		}
	}

	// The TD-native fix is the paper's isolation modality.
	safe := td.MustParse(`
		available(a1).
		acquire(A, W) :- available(A), del.available(A), ins.busy(A, W).
		release(A, W) :- del.busy(A, W), ins.done(W), ins.available(A).
		job(W) :- iso(acquire(A, W)), iso(release(A, W)).
	`)
	goal2, _, err := td.ParseGoal(`job(w1) | job(w2)`, safe.VarHigh)
	if err != nil {
		log.Fatal(err)
	}
	d2, err := td.DatabaseFor(safe)
	if err != nil {
		log.Fatal(err)
	}
	res2, err := td.CheckInvariant(safe, goal2, d2, capacity, td.EngineOptions{LoopCheck: true, Table: true})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\niso-protected acquisition: capacity invariant holds =", res2.Holds)
	fmt.Printf("(proved over every interleaving in %d search steps)\n", res2.Stats.Steps)

	// Serializability: iso(t) | iso(t) behaves like some serial order;
	// the bare composition does not.
	counter := td.MustParse(`
		counter(0).
		bump :- counter(N), del.counter(N), add(N, 1, M), ins.counter(M).
	`)
	dc, err := td.DatabaseFor(counter)
	if err != nil {
		log.Fatal(err)
	}
	mk := func(src string) td.Goal {
		g, _, err := td.ParseGoal(src, counter.VarHigh)
		if err != nil {
			log.Fatal(err)
		}
		return g
	}
	iso, err := td.CheckSerializable(counter, []td.Goal{mk("iso(bump)"), mk("iso(bump)")}, dc, td.EngineOptions{LoopCheck: true, Table: true})
	if err != nil {
		log.Fatal(err)
	}
	bare, err := td.CheckSerializable(counter, []td.Goal{mk("bump"), mk("bump")}, dc, td.EngineOptions{LoopCheck: true, Table: true})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\niso(bump) | iso(bump) serializable:", iso.OK)
	fmt.Println("bump | bump serializable:", bare.OK)
	if bare.Anomaly != nil {
		fmt.Println("anomalous final state (the lost update):")
		fmt.Print(bare.Anomaly)
	}
}
