// Idioms: process-coordination patterns written in Transaction Datalog —
// the CCS/CSP-style patterns the paper positions TD against. Tuples are
// tokens, queries are blocking waits, test-and-consume is acquisition, and
// the database is the only communication medium.
package main

import (
	"fmt"
	"log"
	"time"

	td "repro"
	"repro/internal/idioms"
)

func main() {
	// A bounded buffer connecting a producer and a consumer, plus a mutex
	// guarding a log, running on the operational simulator.
	src := idioms.Buffer("ch", 2) + idioms.Mutex("m") + `
		item(1). item(2). item(3). item(4). item(5).

		producer :- item(V), del.item(V), ch_put(V), producer.
		producer :- empty.item, ch_put(-1).

		consumer :- ch_get(V), handle(V).
		handle(-1) :- ins.closed.
		handle(V) :- V >= 0, m_lock, ins.logged(V), m_unlock, consumer.
	`
	fmt.Print(idioms.Buffer("ch", 2))
	fmt.Print(idioms.Mutex("m"))
	fmt.Println()

	res, err := td.Simulate(src, "producer | consumer", td.SimOptions{
		Timeout: 10 * time.Second,
		Trace:   true,
	})
	if err != nil {
		log.Fatal(err)
	}
	if !res.Completed {
		log.Fatalf("pipeline failed: %v", res.Err)
	}
	fmt.Printf("pipeline completed: %d items logged, %d elementary ops, %d processes\n",
		res.Final.Count("logged", 1), res.Ops, res.Spawned)

	// A barrier: three parties proceed only when all have arrived.
	barrier := idioms.Barrier("bar", 3) + `
		party(Id) :- ins.ready(Id), bar_arrive(Id), ins.past(Id).
	`
	res2, err := td.Simulate(barrier, "party(p1) | party(p2) | party(p3)",
		td.SimOptions{Timeout: 5 * time.Second})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("barrier released all parties:", res2.Completed,
		"- past:", res2.Final.Count("past", 1))

	// The same semaphore program, verified declaratively: with
	// iso-protected acquisition, held permits can never exceed the pool in
	// ANY reachable state of ANY interleaving.
	sem := idioms.Semaphore("sem", 2) + `
		worker(W) :- iso(sem_acquire), ins.served(W), iso(sem_release).
	`
	prog := td.MustParse(sem)
	goal, _, err := td.ParseGoal("worker(a) | worker(b) | worker(c)", prog.VarHigh)
	if err != nil {
		log.Fatal(err)
	}
	d, err := td.DatabaseFor(prog)
	if err != nil {
		log.Fatal(err)
	}
	inv, err := td.CheckInvariant(prog, goal, d, func(d *td.Database) error {
		if d.Count("sem_held", 1) > 2 {
			return fmt.Errorf("over-acquired")
		}
		return nil
	}, td.EngineOptions{LoopCheck: true, Table: true})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("semaphore capacity invariant proven over all interleavings: %v (%d steps)\n",
		inv.Holds, inv.Stats.Steps)
}
