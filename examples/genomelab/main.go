// Genomelab: the paper's Section 3 examples at working scale — a genome
// laboratory's production line specified as a workflow (Example 3.1),
// simulated over a stream of samples with one concurrent process per work
// item and the environment as just another process (Example 3.2), with
// qualified agents as shared resources (Example 3.3) and cooperating
// sub-workflows synchronizing through the database (Example 3.4).
package main

import (
	"fmt"
	"log"
	"time"

	td "repro"
	"repro/internal/sim"
	"repro/internal/workflow"
)

func main() {
	// Example 3.1 — the workflow specification, written as a task graph
	// and compiled into TD rules.
	spec := workflow.GenomeSpec()
	rules, err := workflow.Compile(spec)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("generated Transaction Datalog rules (Example 3.1):")
	fmt.Println(rules)

	// Example 3.2 — simulation: a driver loop consumes work items and
	// spawns one concurrent workflow instance per item.
	cfg := workflow.DefaultLab(8)
	src, goal, err := workflow.LabSource(cfg)
	if err != nil {
		log.Fatal(err)
	}
	prog, err := td.Parse(src)
	if err != nil {
		log.Fatal(err)
	}
	g, _, err := td.ParseGoal(goal, prog.VarHigh)
	if err != nil {
		log.Fatal(err)
	}
	d, err := td.DatabaseFor(prog)
	if err != nil {
		log.Fatal(err)
	}

	// Example 3.3 — the agent pools limit concurrency; a monitor checks
	// the capacity invariant after every database update.
	pool := cfg.Technicians + cfg.Thermocyclers + cfg.GelRigs + cfg.Cameras + cfg.Analysts
	opts := sim.Options{
		Seed:     7,
		Shuffle:  true,
		Timeout:  time.Minute,
		Monitors: []sim.MonitorFunc{workflow.AgentCapacityMonitor(pool)},
	}
	res := td.NewSimulator(prog, opts).Run(g, d)
	if !res.Completed {
		log.Fatalf("laboratory run failed: %v", res.Err)
	}
	if err := workflow.CheckLabRun(cfg, res.Final); err != nil {
		log.Fatalf("invariants: %v", err)
	}
	fmt.Printf("simulated %d samples: %d elementary operations, %d concurrent processes\n",
		cfg.Samples, res.Ops, res.Spawned)

	// The history relations accumulate experimental results — queried by
	// analysis programs, never deleted (the genome-center pattern).
	fmt.Println("\nexperiment history for sample item1:")
	for _, p := range []string{
		workflow.DonePred("mapping", "prep"),
		workflow.DonePred("mapping", "digest"),
		workflow.DonePred("gel", "load"),
		workflow.DonePred("gel", "run"),
		workflow.DonePred("gel", "photo"),
		workflow.DonePred("mapping", "gelstep"),
		workflow.DonePred("mapping", "analyze"),
	} {
		if res.Final.Contains(p, []td.Term{td.Sym("item1")}) {
			fmt.Printf("  %s(item1)\n", p)
		}
	}

	// Example 3.4 — cooperating workflows: a second analysis pipeline that
	// waits, via a blocking database read, for measurements the first one
	// produces.
	coop := `
		measure(P) :- ins.measured(P, 42).
		verify(P) :- measured(P, V), ins.verified(P, V).
	`
	simRes, err := td.Simulate(coop, `verify(sample9) | measure(sample9)`,
		td.SimOptions{Timeout: 5 * time.Second})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\ncooperating workflows completed:", simRes.Completed)
	fmt.Print(simRes.Final)
}
